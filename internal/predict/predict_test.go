package predict

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero disabled", Config{}, true},
		{"perfect", Perfect(300), true},
		{"typical", Config{Precision: 0.85, Recall: 0.8, LeadSec: 240}, true},
		{"zero recall", Config{Precision: 1, Recall: 0, LeadSec: 60}, true},
		{"negative precision", Config{Precision: -0.1, Recall: 0.5}, false},
		{"precision above one", Config{Precision: 1.5, Recall: 0.5}, false},
		{"zero precision enabled", Config{Recall: 0.5}, false},
		{"negative recall", Config{Precision: 0.5, Recall: -0.2}, false},
		{"recall above one", Config{Precision: 0.5, Recall: 1.2}, false},
		{"negative lead", Config{Precision: 0.5, Recall: 0.5, LeadSec: -10}, false},
		{"NaN precision", Config{Precision: math.NaN(), Recall: 0.5}, false},
		{"infinite lead", Config{Precision: 0.5, Recall: 0.5, LeadSec: math.Inf(1)}, false},
	}
	for _, c := range cases {
		if err := c.cfg.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestNewRejectsDisabledAndInvalid(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New(zero) should error")
	}
	if _, err := New(Config{Precision: 2, Recall: 0.5}); err == nil {
		t.Error("New(invalid) should error")
	}
	if _, err := New(Perfect(120)); err != nil {
		t.Errorf("New(Perfect) errored: %v", err)
	}
}

func TestPerfectPredictorFiresExactlyOnce(t *testing.T) {
	p, err := New(Perfect(300))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		period := 100 + 5000*rng.Float64()
		evs := p.PeriodEvents(period, rng)
		if len(evs) != 1 || !evs[0].True {
			t.Fatalf("period %g: events %+v, want one true alarm", period, evs)
		}
		want := period - 300
		if want < 0 {
			want = 0
		}
		if evs[0].At != want {
			t.Fatalf("period %g: alarm at %g, want %g", period, evs[0].At, want)
		}
	}
}

func TestShortPeriodClampsLeadToZero(t *testing.T) {
	p, _ := New(Perfect(600))
	evs := p.PeriodEvents(100, rand.New(rand.NewSource(2)))
	if len(evs) != 1 || evs[0].At != 0 || !evs[0].True {
		t.Fatalf("events %+v, want one true alarm at 0", evs)
	}
}

func TestRealizedPrecisionAndRecall(t *testing.T) {
	cfg := Config{Precision: 0.7, Recall: 0.6, LeadSec: 120}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var tp, fp, periods int
	for i := 0; i < 20000; i++ {
		periods++
		for _, ev := range p.PeriodEvents(3600, rng) {
			if ev.True {
				tp++
			} else {
				fp++
			}
		}
	}
	recall := float64(tp) / float64(periods)
	if math.Abs(recall-cfg.Recall) > 0.02 {
		t.Errorf("realized recall %.3f, want ≈%.2f", recall, cfg.Recall)
	}
	precision := float64(tp) / float64(tp+fp)
	if math.Abs(precision-cfg.Precision) > 0.03 {
		t.Errorf("realized precision %.3f, want ≈%.2f", precision, cfg.Precision)
	}
}

func TestPeriodEventsSortedAndDeterministic(t *testing.T) {
	p, _ := New(Config{Precision: 0.3, Recall: 0.9, LeadSec: 60})
	draw := func() [][]Event {
		rng := rand.New(rand.NewSource(11))
		out := make([][]Event, 50)
		for i := range out {
			out[i] = p.PeriodEvents(1800, rng)
		}
		return out
	}
	a, b := draw(), draw()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same stream produced different alarm sequences")
	}
	for i, evs := range a {
		for j := 1; j < len(evs); j++ {
			if evs[j].At < evs[j-1].At {
				t.Fatalf("draw %d: events unsorted: %+v", i, evs)
			}
		}
		for _, ev := range evs {
			if ev.At < 0 || ev.At > 1800 {
				t.Fatalf("draw %d: alarm outside period: %+v", i, ev)
			}
		}
	}
}

func TestPeriodEventsNilAndDegenerate(t *testing.T) {
	var p *Predictor
	if evs := p.PeriodEvents(100, nil); evs != nil {
		t.Errorf("nil predictor returned %v", evs)
	}
	pp, _ := New(Perfect(60))
	if evs := pp.PeriodEvents(0, rand.New(rand.NewSource(1))); evs != nil {
		t.Errorf("zero period returned %v", evs)
	}
	if evs := pp.PeriodEvents(-5, rand.New(rand.NewSource(1))); evs != nil {
		t.Errorf("negative period returned %v", evs)
	}
}

func TestPolicyParseAndString(t *testing.T) {
	for _, p := range []Policy{PolicyReactive, PolicyProactive, PolicyMigrate} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("round trip %v: got %v, %v", p, got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("bogus policy should error")
	}
	if s := Policy(99).String(); s != "policy(99)" {
		t.Errorf("unknown policy renders %q", s)
	}
}

func TestStreamSeedDecorrelates(t *testing.T) {
	if StreamSeed(1) == 1 || StreamSeed(1) == StreamSeed(2) {
		t.Error("stream seeds not decorrelated")
	}
	if StreamSeed(42) != StreamSeed(42) {
		t.Error("stream seed not deterministic")
	}
}

func TestConfigString(t *testing.T) {
	if s := (Config{}).String(); s != "off" {
		t.Errorf("zero config renders %q", s)
	}
	if s := Perfect(240).String(); s != "p1.00/r1.00/lead240s" {
		t.Errorf("perfect renders %q", s)
	}
}
