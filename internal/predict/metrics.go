package predict

import "github.com/cycleharvest/ckptsched/internal/obs"

// Metrics holds the predictor's observability hooks. All fields are
// nil-safe obs counters; the simulation engines bump engine-local
// integers and flush here once per run (the internal/parallel
// discipline), while the live runner flushes once per session.
var Metrics struct {
	// Fired counts alarms raised (true and false together).
	Fired *obs.Counter
	// Hits counts failures that arrived with a true alarm raised —
	// predictions that paid off.
	Hits *obs.Counter
	// False counts false alarms.
	False *obs.Counter
	// Missed counts failures that arrived with no true alarm.
	Missed *obs.Counter
	// ProactiveCheckpoints counts checkpoints taken because an alarm
	// fired (PolicyProactive).
	ProactiveCheckpoints *obs.Counter
	// Migrations counts completed prediction-triggered migrations
	// (PolicyMigrate).
	Migrations *obs.Counter
}

// Instrument points the package's metrics at r (DESIGN.md §13 lists
// the names). Call before simulations start, typically from main;
// Instrument(nil) turns instrumentation off.
func Instrument(r *obs.Registry) {
	Metrics.Fired = r.Counter("predict_fired_total",
		"Fault-predictor alarms raised (true and false).")
	Metrics.Hits = r.Counter("predict_hits_total",
		"Failures that arrived with a true alarm raised.")
	Metrics.False = r.Counter("predict_false_total",
		"False alarms raised.")
	Metrics.Missed = r.Counter("predict_missed_total",
		"Failures that arrived unpredicted.")
	Metrics.ProactiveCheckpoints = r.Counter("predict_proactive_checkpoints_total",
		"Checkpoints triggered by predictor alarms.")
	Metrics.Migrations = r.Counter("predict_migrations_total",
		"Completed prediction-triggered migrations.")
}
