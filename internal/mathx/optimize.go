package mathx

import "math"

// golden is the golden ratio section constant (3-sqrt(5))/2.
const golden = 0.3819660112501051

// GoldenSection minimizes f on [a, b] by Golden Section Search,
// assuming f is unimodal on the interval. It returns the abscissa of
// the minimum and the minimum value. tol is an absolute tolerance on
// the abscissa.
//
// This is the optimization routine the paper uses (via Numerical
// Recipes) to minimize the overhead ratio Γ(T)/T.
func GoldenSection(f func(float64) float64, a, b, tol float64) (x, fx float64) {
	if a > b {
		a, b = b, a
	}
	x1 := a + golden*(b-a)
	x2 := b - golden*(b-a)
	f1 := f(x1)
	f2 := f(x2)
	for b-a > tol {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = a + golden*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = b - golden*(b-a)
			f2 = f(x2)
		}
	}
	if f1 < f2 {
		return x1, f1
	}
	return x2, f2
}

// MinimizeScanGolden minimizes f over [lo, hi] (lo > 0) by first
// scanning a geometric grid of n points to locate the most promising
// bracket and then refining it with Golden Section Search.
//
// The coarse scan makes the routine robust to objectives that are not
// globally unimodal (hyperexponential overhead ratios can have gentle
// shoulders); the golden refinement recovers full precision near the
// winning grid cell. tol is relative to the bracket location.
func MinimizeScanGolden(f func(float64) float64, lo, hi float64, n int, tol float64) (x, fx float64) {
	if n < 3 {
		n = 3
	}
	if lo <= 0 {
		lo = 1e-9
	}
	if hi <= lo {
		hi = lo * 2
	}
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	grid := make([]float64, n)
	best := 0
	bestF := math.Inf(1)
	g := lo
	for i := range n {
		grid[i] = g
		if v := f(g); v < bestF {
			best, bestF = i, v
		}
		g *= ratio
	}
	a := grid[max(0, best-1)]
	b := grid[min(n-1, best+1)]
	gx, gfx := GoldenSection(f, a, b, tol*math.Max(1, a))
	if gfx <= bestF {
		return gx, gfx
	}
	return grid[best], bestF
}

// warmWindow is the half-width, in grid cells, of the window
// MinimizeWarmScanGolden evaluates around the previous optimum.
const warmWindow = 2

// MinimizeWarmScanGolden is the warm-start variant of
// MinimizeScanGolden. Instead of evaluating the full n-point geometric
// grid it evaluates only a ±warmWindow-cell window of the same grid
// centred on the cell nearest prev — a minimizer previously found for a
// nearby objective — and then refines with the identical Golden Section
// step over the identical bracket.
//
// ok reports whether the window certified a bracket: it is false (and
// x, fx are meaningless) when the window best lands on a window edge,
// in which case the true grid minimum may lie outside the window and
// the caller must fall back to the cold MinimizeScanGolden scan.
//
// When ok is true and the full-grid argmin lies inside the window —
// which holds whenever the optimum drifts by less than warmWindow grid
// cells between calls, as T_opt(age) does between adjacent schedule
// intervals — the result is bit-identical to the cold scan: the window
// reproduces the cold grid's abscissae by the same lo·ratio^i
// recurrence, and the refinement bracket, tolerance, and acceptance
// comparison are the same.
func MinimizeWarmScanGolden(f func(float64) float64, lo, hi float64, n int, tol, prev float64) (x, fx float64, ok bool) {
	if n < 3 {
		n = 3
	}
	if lo <= 0 {
		lo = 1e-9
	}
	if hi <= lo {
		hi = lo * 2
	}
	if !(prev > 0) {
		return 0, 0, false
	}
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	center := int(math.Round(math.Log(prev/lo) / math.Log(ratio)))
	wlo := max(0, center-warmWindow)
	whi := min(n-1, center+warmWindow)
	if whi-wlo < 2 {
		return 0, 0, false
	}
	// Rebuild the grid prefix by the same repeated multiplication the
	// cold scan uses, so the evaluated abscissae match it bitwise.
	grid := make([]float64, whi+1)
	g := lo
	for i := range grid {
		grid[i] = g
		g *= ratio
	}
	best := -1
	bestF := math.Inf(1)
	for i := wlo; i <= whi; i++ {
		if v := f(grid[i]); v < bestF {
			best, bestF = i, v
		}
	}
	if best <= wlo || best >= whi {
		return 0, 0, false
	}
	a := grid[best-1]
	b := grid[best+1]
	gx, gfx := GoldenSection(f, a, b, tol*math.Max(1, a))
	if gfx <= bestF {
		return gx, gfx, true
	}
	return grid[best], bestF, true
}
