package mathx

import (
	"math"
	"testing"
)

func TestBisectFindsSqrt2(t *testing.T) {
	f := func(x float64) float64 { return x*x - 2 }
	x, err := Bisect(f, 0, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x, math.Sqrt2, 1e-10) {
		t.Errorf("Bisect sqrt(2) = %.12g", x)
	}
}

func TestBisectEndpointRoot(t *testing.T) {
	f := func(x float64) float64 { return x }
	x, err := Bisect(f, 0, 1, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if x != 0 {
		t.Errorf("Bisect endpoint root = %g, want 0", x)
	}
}

func TestBisectNoSignChange(t *testing.T) {
	f := func(x float64) float64 { return x*x + 1 }
	if _, err := Bisect(f, -1, 1, 1e-9); err == nil {
		t.Error("Bisect should fail without a sign change")
	}
}

func TestNewtonBisectCubic(t *testing.T) {
	f := func(x float64) float64 { return x*x*x - 8 }
	df := func(x float64) float64 { return 3 * x * x }
	x, err := NewtonBisect(f, df, 0, 10, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x, 2, 1e-10) {
		t.Errorf("NewtonBisect cbrt(8) = %.12g", x)
	}
}

func TestNewtonBisectFlatDerivativeFallsBackToBisection(t *testing.T) {
	// f has a root at 0.5 but the supplied derivative is wrong (zero),
	// forcing the bisection safeguard on every step.
	f := func(x float64) float64 { return x - 0.5 }
	df := func(float64) float64 { return 0 }
	x, err := NewtonBisect(f, df, 0, 1, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x, 0.5, 1e-8) {
		t.Errorf("NewtonBisect with broken derivative = %g, want 0.5", x)
	}
}

func TestExpandBracket(t *testing.T) {
	f := func(x float64) float64 { return x - 100 }
	a, b, err := ExpandBracket(f, 1e-3, 1, 30)
	if err != nil {
		t.Fatal(err)
	}
	if !(f(a) < 0 && f(b) > 0) {
		t.Errorf("ExpandBracket returned non-bracketing [%g, %g]", a, b)
	}
}

func TestExpandBracketFailure(t *testing.T) {
	f := func(x float64) float64 { return 1 + x*0 }
	if _, _, err := ExpandBracket(f, 1, 2, 5); err == nil {
		t.Error("ExpandBracket should fail for sign-constant f")
	}
}

func TestGoldenSectionQuadratic(t *testing.T) {
	f := func(x float64) float64 { return (x - 3.25) * (x - 3.25) }
	x, fx := GoldenSection(f, 0, 10, 1e-10)
	if !almostEqual(x, 3.25, 1e-7) {
		t.Errorf("GoldenSection argmin = %.10g, want 3.25", x)
	}
	if fx > 1e-12 {
		t.Errorf("GoldenSection min value = %g, want ~0", fx)
	}
}

func TestGoldenSectionReversedInterval(t *testing.T) {
	f := func(x float64) float64 { return math.Abs(x - 1) }
	x, _ := GoldenSection(f, 5, -5, 1e-9)
	if !almostEqual(x, 1, 1e-6) {
		t.Errorf("GoldenSection on reversed interval = %g, want 1", x)
	}
}

func TestMinimizeScanGoldenMultimodal(t *testing.T) {
	// Two local minima; the global one is at x≈100 with value -2.
	f := func(x float64) float64 {
		return -math.Exp(-(x-1)*(x-1)) - 2*math.Exp(-(x-100)*(x-100)/100)
	}
	x, fx := MinimizeScanGolden(f, 0.01, 1000, 200, 1e-8)
	if math.Abs(x-100) > 1 {
		t.Errorf("MinimizeScanGolden argmin = %g, want ≈100", x)
	}
	if fx > -1.9 {
		t.Errorf("MinimizeScanGolden min = %g, want ≈-2", fx)
	}
}

func TestMinimizeScanGoldenDegenerateBounds(t *testing.T) {
	f := func(x float64) float64 { return x }
	x, _ := MinimizeScanGolden(f, -1, -2, 2, 1e-6) // invalid bounds sanitized
	if math.IsNaN(x) || x <= 0 {
		t.Errorf("MinimizeScanGolden with bad bounds returned %g", x)
	}
}

func TestSimpsonAdaptivePolynomial(t *testing.T) {
	// ∫₀¹ x³ dx = 1/4 (Simpson is exact for cubics).
	got := SimpsonAdaptive(func(x float64) float64 { return x * x * x }, 0, 1, 1e-12)
	if !almostEqual(got, 0.25, 1e-12) {
		t.Errorf("∫x³ = %g, want 0.25", got)
	}
}

func TestSimpsonAdaptiveExp(t *testing.T) {
	got := SimpsonAdaptive(math.Exp, 0, 2, 1e-12)
	want := math.Exp(2) - 1
	if !almostEqual(got, want, 1e-10) {
		t.Errorf("∫eˣ = %.12g, want %.12g", got, want)
	}
}

func TestSimpsonAdaptiveReversedAndEmpty(t *testing.T) {
	if got := SimpsonAdaptive(math.Exp, 2, 2, 1e-9); got != 0 {
		t.Errorf("empty interval integral = %g", got)
	}
	fwd := SimpsonAdaptive(math.Exp, 0, 1, 1e-12)
	rev := SimpsonAdaptive(math.Exp, 1, 0, 1e-12)
	if !almostEqual(fwd, -rev, 1e-12) {
		t.Errorf("reversed interval: %g vs %g", fwd, rev)
	}
}

func TestGaussLegendre20(t *testing.T) {
	got := GaussLegendre20(func(x float64) float64 { return math.Sin(x) }, 0, math.Pi)
	if !almostEqual(got, 2, 1e-12) {
		t.Errorf("∫sin over [0,π] = %.14g, want 2", got)
	}
	got = GaussLegendre20(func(x float64) float64 { return x * x }, -1, 3)
	if !almostEqual(got, 28.0/3, 1e-12) {
		t.Errorf("∫x² over [-1,3] = %.14g, want %g", got, 28.0/3)
	}
}
