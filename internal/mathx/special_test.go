package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	return diff <= tol || diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestGammaPKnownValues(t *testing.T) {
	// Reference values from Abramowitz & Stegun / independent numerical
	// evaluation of the regularized lower incomplete gamma function.
	cases := []struct {
		a, x, want float64
	}{
		{1, 0, 0},
		{1, 1, 1 - math.Exp(-1)},           // P(1,x) is the Exp(1) CDF
		{1, 2.5, 1 - math.Exp(-2.5)},       //
		{2, 2, 1 - 3*math.Exp(-2)},         // P(2,x) = 1-(1+x)e^-x
		{0.5, 0.25, math.Erf(0.5)},         // P(1/2, x) = erf(sqrt x)
		{0.5, 4, math.Erf(2)},              //
		{3, 3, 1 - math.Exp(-3)*(1+3+4.5)}, // P(3,x)=1-e^-x(1+x+x^2/2)
		{5, 10, 1 - math.Exp(-10)*(1+10+50+1000.0/6+10000.0/24)},
	}
	for _, c := range cases {
		got := GammaP(c.a, c.x)
		if !almostEqual(got, c.want, 1e-12) {
			t.Errorf("GammaP(%g, %g) = %.15g, want %.15g", c.a, c.x, got, c.want)
		}
	}
}

func TestGammaPQComplement(t *testing.T) {
	f := func(a, x float64) bool {
		a = 0.05 + math.Abs(math.Mod(a, 20))
		x = math.Abs(math.Mod(x, 50))
		p, q := GammaP(a, x), GammaQ(a, x)
		return almostEqual(p+q, 1, 1e-10) && p >= 0 && p <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGammaPMonotoneInX(t *testing.T) {
	f := func(a, x1, x2 float64) bool {
		a = 0.05 + math.Abs(math.Mod(a, 10))
		x1 = math.Abs(math.Mod(x1, 30))
		x2 = math.Abs(math.Mod(x2, 30))
		lo, hi := math.Min(x1, x2), math.Max(x1, x2)
		return GammaP(a, lo) <= GammaP(a, hi)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGammaPEdgeCases(t *testing.T) {
	if got := GammaP(2, math.Inf(1)); got != 1 {
		t.Errorf("GammaP(2, +Inf) = %g, want 1", got)
	}
	if got := GammaP(2, -1); got != 0 {
		t.Errorf("GammaP(2, -1) = %g, want 0", got)
	}
	if got := GammaP(-1, 1); !math.IsNaN(got) {
		t.Errorf("GammaP(-1, 1) = %g, want NaN", got)
	}
	if got := GammaQ(3, 0); got != 1 {
		t.Errorf("GammaQ(3, 0) = %g, want 1", got)
	}
}

func TestLowerIncompleteGammaVsQuadrature(t *testing.T) {
	for _, a := range []float64{0.4, 1, 1.7, 3.2, 6} {
		for _, x := range []float64{0.1, 0.9, 2, 7} {
			// The integrand is singular at 0 for a < 1; integrate from
			// eps and add the analytic head ∫₀^eps t^(a-1) dt = eps^a/a
			// (e^-t ≈ 1 there).
			const eps = 1e-12
			want := math.Pow(eps, a)/a + SimpsonAdaptive(func(t float64) float64 {
				return math.Pow(t, a-1) * math.Exp(-t)
			}, eps, x, 1e-12)
			got := LowerIncompleteGamma(a, x)
			if !almostEqual(got, want, 1e-7) {
				t.Errorf("γ(%g, %g) = %g, quadrature %g", a, x, got, want)
			}
		}
	}
}

func TestBetaIncKnownValues(t *testing.T) {
	cases := []struct {
		a, b, x, want float64
	}{
		{1, 1, 0.3, 0.3},       // uniform CDF
		{2, 1, 0.5, 0.25},      // I_x(2,1) = x^2
		{1, 2, 0.5, 0.75},      // I_x(1,2) = 1-(1-x)^2
		{2, 2, 0.5, 0.5},       // symmetric
		{0.5, 0.5, 0.5, 0.5},   // arcsine distribution median
		{5, 3, 0.7, 0.6470695}, // 105·[x⁵/5 − x⁶/3 + x⁷/7] at 0.7
	}
	for _, c := range cases {
		got := BetaInc(c.a, c.b, c.x)
		if !almostEqual(got, c.want, 1e-9) {
			t.Errorf("BetaInc(%g, %g, %g) = %.10g, want %.10g", c.a, c.b, c.x, got, c.want)
		}
	}
}

func TestBetaIncSymmetry(t *testing.T) {
	f := func(a, b, x float64) bool {
		a = 0.1 + math.Abs(math.Mod(a, 10))
		b = 0.1 + math.Abs(math.Mod(b, 10))
		x = math.Abs(math.Mod(x, 1))
		lhs := BetaInc(a, b, x)
		rhs := 1 - BetaInc(b, a, 1-x)
		return almostEqual(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBetaIncEdgeCases(t *testing.T) {
	if got := BetaInc(2, 3, 0); got != 0 {
		t.Errorf("BetaInc(2,3,0) = %g, want 0", got)
	}
	if got := BetaInc(2, 3, 1); got != 1 {
		t.Errorf("BetaInc(2,3,1) = %g, want 1", got)
	}
	if got := BetaInc(0, 1, 0.5); !math.IsNaN(got) {
		t.Errorf("BetaInc(0,1,0.5) = %g, want NaN", got)
	}
}

func TestBetaIncVsQuadrature(t *testing.T) {
	for _, c := range []struct{ a, b float64 }{{1.5, 2.5}, {3, 4}, {0.7, 0.9}, {8, 2}} {
		norm := math.Exp(lgamma(c.a+c.b) - lgamma(c.a) - lgamma(c.b))
		for _, x := range []float64{0.1, 0.35, 0.6, 0.92} {
			want := norm * SimpsonAdaptive(func(t float64) float64 {
				return math.Pow(t, c.a-1) * math.Pow(1-t, c.b-1)
			}, 1e-12, x, 1e-13)
			got := BetaInc(c.a, c.b, x)
			if !almostEqual(got, want, 1e-6) {
				t.Errorf("BetaInc(%g, %g, %g) = %g, quadrature %g", c.a, c.b, x, got, want)
			}
		}
	}
}
