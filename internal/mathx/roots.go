package mathx

import (
	"fmt"
	"math"
)

// Bisect finds a root of f in [a, b] by bisection. f(a) and f(b) must
// have opposite signs (a zero at either endpoint is accepted). The
// returned root x satisfies |f(x)| small or |b-a| <= tol.
func Bisect(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, fmt.Errorf("mathx: Bisect: no sign change on [%g, %g] (f=%g, %g)", a, b, fa, fb)
	}
	for range 200 {
		m := 0.5 * (a + b)
		fm := f(m)
		if fm == 0 || b-a <= tol {
			return m, nil
		}
		if math.Signbit(fm) == math.Signbit(fa) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	return 0.5 * (a + b), nil
}

// NewtonBisect finds a root of f in [a, b] using Newton's method with
// bisection safeguards (Numerical Recipes "rtsafe"). df is the
// derivative of f. f(a) and f(b) must bracket a root.
func NewtonBisect(f, df func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, fmt.Errorf("mathx: NewtonBisect: no sign change on [%g, %g]", a, b)
	}
	// Orient so that f(lo) < 0.
	lo, hi := a, b
	if fa > 0 {
		lo, hi = b, a
	}
	x := 0.5 * (a + b)
	dxold := math.Abs(b - a)
	dx := dxold
	fx, dfx := f(x), df(x)
	for range 200 {
		// Bisect if Newton would jump outside the bracket or converge
		// too slowly.
		newtonOut := ((x-hi)*dfx-fx)*((x-lo)*dfx-fx) > 0
		slow := math.Abs(2*fx) > math.Abs(dxold*dfx)
		if newtonOut || slow || dfx == 0 {
			dxold = dx
			dx = 0.5 * (hi - lo)
			x = lo + dx
			if lo == x {
				return x, nil
			}
		} else {
			dxold = dx
			dx = fx / dfx
			t := x
			x -= dx
			if t == x {
				return x, nil
			}
		}
		if math.Abs(dx) < tol {
			return x, nil
		}
		fx, dfx = f(x), df(x)
		if fx < 0 {
			lo = x
		} else {
			hi = x
		}
	}
	return x, nil
}

// ExpandBracket grows [a, b] geometrically until f changes sign across
// it, returning the bracketing interval. It expands the upper end only
// (the lower end stays fixed), which matches its use on positive
// parameter domains. maxGrow bounds the number of doublings.
func ExpandBracket(f func(float64) float64, a, b float64, maxGrow int) (float64, float64, error) {
	fa := f(a)
	fb := f(b)
	for range maxGrow {
		if math.Signbit(fa) != math.Signbit(fb) || fa == 0 || fb == 0 {
			return a, b, nil
		}
		b *= 2
		fb = f(b)
	}
	if math.Signbit(fa) != math.Signbit(fb) || fa == 0 || fb == 0 {
		return a, b, nil
	}
	return a, b, fmt.Errorf("mathx: ExpandBracket: no sign change up to b=%g", b)
}
