// Package mathx provides the special functions and numerical routines
// the checkpoint-scheduling models depend on: regularized incomplete
// gamma and beta functions, safeguarded root finding, adaptive
// quadrature, and bracketed Golden Section minimization.
//
// The package replaces the roles Matlab and Numerical Recipes in C play
// in the original paper. All routines are pure functions over float64
// and are safe for concurrent use.
package mathx

import (
	"errors"
	"math"
)

// Eps is the convergence tolerance used by the iterative special
// function evaluations.
const Eps = 3e-14

// maxIter bounds the series/continued-fraction iterations.
const maxIter = 500

// ErrNoConverge is returned when an iterative routine exhausts its
// iteration budget without meeting its tolerance.
var ErrNoConverge = errors.New("mathx: iteration did not converge")

// GammaP computes the regularized lower incomplete gamma function
// P(a, x) = γ(a, x)/Γ(a) for a > 0, x >= 0.
//
// P(a, x) is the CDF of a Gamma(a, 1) random variable evaluated at x.
// It is used for the Weibull partial moment ∫₀ˣ t·f(t) dt.
func GammaP(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 0
	case math.IsInf(x, 1):
		return 1
	}
	if x < a+1 {
		return gammaPSeries(a, x)
	}
	return 1 - gammaQContinuedFraction(a, x)
}

// GammaQ computes the regularized upper incomplete gamma function
// Q(a, x) = 1 - P(a, x).
func GammaQ(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 1
	case math.IsInf(x, 1):
		return 0
	}
	if x < a+1 {
		return 1 - gammaPSeries(a, x)
	}
	return gammaQContinuedFraction(a, x)
}

// gammaPSeries evaluates P(a,x) by its power series, valid for x < a+1.
func gammaPSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for range maxIter {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*Eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaQContinuedFraction evaluates Q(a,x) by its continued fraction,
// valid for x >= a+1 (modified Lentz's method).
func gammaQContinuedFraction(a, x float64) float64 {
	const fpmin = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < Eps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// LowerIncompleteGamma computes the unregularized lower incomplete
// gamma function γ(a, x) = ∫₀ˣ t^(a-1) e^(-t) dt.
func LowerIncompleteGamma(a, x float64) float64 {
	return GammaP(a, x) * math.Gamma(a)
}

// BetaInc computes the regularized incomplete beta function
// I_x(a, b) for a, b > 0 and 0 <= x <= 1.
//
// I_x(a, b) is the CDF of a Beta(a, b) random variable; it underlies
// the Student-t distribution used for the paper's confidence intervals
// and paired t-tests.
func BetaInc(a, b, x float64) float64 {
	switch {
	case a <= 0 || b <= 0 || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta
// function (modified Lentz's method).
func betaCF(a, b, x float64) float64 {
	const fpmin = 1e-300
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < Eps {
			break
		}
	}
	return h
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
