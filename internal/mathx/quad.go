package mathx

import "math"

// SimpsonAdaptive integrates f over [a, b] with adaptive Simpson's
// rule to absolute tolerance tol.
//
// The analytical models use closed-form partial moments; this routine
// is the generic fallback and the oracle the property tests compare
// against.
func SimpsonAdaptive(f func(float64) float64, a, b, tol float64) float64 {
	if a == b {
		return 0
	}
	if a > b {
		return -SimpsonAdaptive(f, b, a, tol)
	}
	fa, fb := f(a), f(b)
	m := 0.5 * (a + b)
	fm := f(m)
	whole := simpson(a, b, fa, fm, fb)
	return adaptiveAux(f, a, b, fa, fm, fb, whole, tol, 50)
}

func simpson(a, b, fa, fm, fb float64) float64 {
	return (b - a) / 6 * (fa + 4*fm + fb)
}

func adaptiveAux(f func(float64) float64, a, b, fa, fm, fb, whole, tol float64, depth int) float64 {
	m := 0.5 * (a + b)
	lm := 0.5 * (a + m)
	rm := 0.5 * (m + b)
	flm, frm := f(lm), f(rm)
	left := simpson(a, m, fa, flm, fm)
	right := simpson(m, b, fm, frm, fb)
	if depth <= 0 || math.Abs(left+right-whole) <= 15*tol {
		return left + right + (left+right-whole)/15
	}
	return adaptiveAux(f, a, m, fa, flm, fm, left, tol/2, depth-1) +
		adaptiveAux(f, m, b, fm, frm, fb, right, tol/2, depth-1)
}

// GaussLegendre20 integrates f over [a, b] with a fixed 20-point
// Gauss-Legendre rule. It is fast and accurate for smooth integrands
// and is used where the adaptive rule would be too slow in inner loops.
func GaussLegendre20(f func(float64) float64, a, b float64) float64 {
	// Abscissae and weights for n=20 on [-1, 1] (positive half; the
	// rule is symmetric).
	var x = [10]float64{
		0.0765265211334973, 0.2277858511416451, 0.3737060887154196,
		0.5108670019508271, 0.6360536807265150, 0.7463319064601508,
		0.8391169718222188, 0.9122344282513259, 0.9639719272779138,
		0.9931285991850949,
	}
	var w = [10]float64{
		0.1527533871307258, 0.1491729864726037, 0.1420961093183821,
		0.1316886384491766, 0.1181945319615184, 0.1019301198172404,
		0.0832767415767048, 0.0626720483341091, 0.0406014298003869,
		0.0176140071391521,
	}
	c := 0.5 * (b - a)
	d := 0.5 * (b + a)
	sum := 0.0
	for i := range x {
		dx := c * x[i]
		sum += w[i] * (f(d+dx) + f(d-dx))
	}
	return c * sum
}
