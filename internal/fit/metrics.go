package fit

import "github.com/cycleharvest/ckptsched/internal/obs"

// metrics holds the package's observability hooks. All fields are
// nil-safe obs metrics, so the zero value (instrumentation off) costs
// one predictable branch per fit — never anything inside the EM inner
// loops, which only flush local tallies when an estimate completes.
var metrics struct {
	// emFits counts completed Hyperexp EM estimations; emIters
	// accumulates the iterations they took, so the ratio is the mean
	// EM convergence length.
	emFits, emIters *obs.Counter
	// cacheHits/cacheMisses/cacheWaits partition Cache.Fit calls:
	// served from a finished entry, first caller running the fit, or
	// blocked behind another caller's in-flight fit (single-flight).
	cacheHits, cacheMisses, cacheWaits *obs.Counter
	// cacheEvictions counts entries a bounded cache dropped to stay
	// within its size budget.
	cacheEvictions *obs.Counter
}

// Instrument points the package's estimation metrics at r (DESIGN.md
// §11 lists the names). Call it before any fitting work begins —
// typically from main — and do not call it concurrently with Fit or
// Cache.Fit. Instrument(nil) turns instrumentation off.
func Instrument(r *obs.Registry) {
	metrics.emFits = r.Counter("fit_em_fits_total",
		"Completed hyperexponential EM estimations.")
	metrics.emIters = r.Counter("fit_em_iterations_total",
		"EM iterations accumulated across all hyperexponential fits.")
	metrics.cacheHits = r.Counter("fit_cache_hits_total",
		"Cache.Fit calls served from an already-fitted entry.")
	metrics.cacheMisses = r.Counter("fit_cache_misses_total",
		"Cache.Fit calls that created the entry and ran the fit.")
	metrics.cacheWaits = r.Counter("fit_cache_waits_total",
		"Cache.Fit calls that blocked behind another caller's in-flight fit.")
	metrics.cacheEvictions = r.Counter("fit_cache_evictions_total",
		"Finished entries a bounded Cache evicted to stay within MaxEntries.")
}
