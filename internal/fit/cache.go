package fit

import (
	"sync"
	"sync/atomic"

	"github.com/cycleharvest/ckptsched/internal/dist"
)

// Cache memoizes Fit results so each (key, model) pair is estimated at
// most once, no matter how many concurrent callers ask for it. The EM
// hyperexponential fit is by far the costliest estimator in the
// pipeline, and the evaluation sweeps ask for the same fit once per
// checkpoint-duration grid point; the cache collapses that |CTimes|×
// duplication to a single fit.
//
// Keying contract: entries are keyed by (key, model), NOT by the data
// contents. The caller must guarantee that a key (typically the
// machine name) always accompanies the same training sample within one
// cache's lifetime; reusing a key with different data silently returns
// the first fit. Use one Cache per workload.
//
// Concurrency: safe for concurrent use. Lookups are single-flight —
// the first caller for an entry runs the fit while later callers for
// the same entry block on it rather than refitting, so a cache shared
// by a worker pool does each fit exactly once. Fit errors are memoized
// like results.
type Cache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
}

type cacheKey struct {
	key   string
	model Model
}

type cacheEntry struct {
	once sync.Once
	// done flips to true after once completes; it classifies later
	// callers as cache hits (entry finished) versus single-flight
	// waits (entry still in flight) without holding the cache lock.
	done atomic.Bool
	d    dist.Distribution
	err  error
}

// NewCache returns an empty fit cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[cacheKey]*cacheEntry)}
}

// Fit returns the memoized fit of the model family to data under key,
// estimating it on first use. A nil *Cache is valid and simply fits
// every time (no memoization), which keeps call sites unconditional.
func (c *Cache) Fit(key string, model Model, data []float64) (dist.Distribution, error) {
	if c == nil {
		return Fit(model, data)
	}
	k := cacheKey{key: key, model: model}
	c.mu.Lock()
	e, ok := c.entries[k]
	if !ok {
		e = &cacheEntry{}
		c.entries[k] = e
	}
	c.mu.Unlock()
	switch {
	case !ok:
		metrics.cacheMisses.Inc()
	case e.done.Load():
		metrics.cacheHits.Inc()
	default:
		// The entry exists but its fit has not finished: this caller is
		// about to block inside once.Do behind the in-flight fit. (The
		// fit may finish between the Load and the Do — the wait is then
		// momentary, but it still raced an in-flight estimate.)
		metrics.cacheWaits.Inc()
	}
	e.once.Do(func() {
		e.d, e.err = Fit(model, data)
		e.done.Store(true)
	})
	return e.d, e.err
}

// Len reports the number of distinct (key, model) entries resident
// (fitted or in flight).
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
