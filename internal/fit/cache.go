package fit

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/cycleharvest/ckptsched/internal/dist"
)

// ErrKeyReuse reports a violation of the Cache keying contract: the
// same (key, model) pair arrived with observably different data. The
// cache detects this with a cheap content fingerprint recorded by the
// entry's first caller, so a workload that recycles machine names
// across different histories fails loudly instead of silently serving
// the first fit forever. Errors wrap ErrKeyReuse; test with errors.Is.
var ErrKeyReuse = errors.New("fit: cache key reused with different data")

// Cache memoizes Fit results so each (key, model) pair is estimated at
// most once, no matter how many concurrent callers ask for it. The EM
// hyperexponential fit is by far the costliest estimator in the
// pipeline, and the evaluation sweeps ask for the same fit once per
// checkpoint-duration grid point; the cache collapses that |CTimes|×
// duplication to a single fit.
//
// Keying contract: entries are keyed by (key, model), NOT by the data
// contents. The caller must guarantee that a key (typically the
// machine name) always accompanies the same training sample within one
// cache's lifetime. The contract is enforced: every call fingerprints
// its data (FNV-1a over the sample bits) and a key that reappears with
// a different fingerprint gets ErrKeyReuse — or a panic when the cache
// was built with PanicOnKeyReuse, for tests that want the stack of the
// offending call site. In a bounded cache an evicted entry takes its
// fingerprint with it, so reuse of an evicted key refits silently; the
// guarantee is per-residency, not per-lifetime.
//
// Concurrency: safe for concurrent use. The key space is partitioned
// over power-of-two shards by a hash of (key, model), so callers for
// different entries contend only when they hash to the same shard: the
// single global mutex this design replaced serialized every lookup —
// including pure hits — through one lock whose contended (futex) path
// costs microseconds per handoff once more than one core hammers it.
// BenchmarkFitCacheContention measures the hit path at 16 goroutines
// against the retired design, kept as a reference implementation.
// Lookups remain single-flight per entry — the first caller for an entry runs
// the fit while later callers for the same entry block on it rather
// than refitting, so a cache shared by a worker pool does each fit
// exactly once. Fit errors are memoized like results.
type Cache struct {
	shards       []cacheShard
	mask         uint64
	maxPerShard  int
	panicOnReuse bool
}

// cacheShard is one lock domain, padded out to a 64-byte cache line so
// neighbouring shards never false-share under write-heavy contention.
type cacheShard struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
	// order tracks insertion order for bounded caches; eviction removes
	// the oldest finished entry. nil when the cache is unbounded.
	order []cacheKey
	// pad the 40 bytes above (8 mutex + 8 map + 24 slice header) out to
	// a 64-byte line.
	_ [24]byte
}

type cacheKey struct {
	key   string
	model Model
}

type cacheEntry struct {
	once sync.Once
	// done flips to true after once completes; it classifies later
	// callers as cache hits (entry finished) versus single-flight
	// waits (entry still in flight) without holding the shard lock.
	done atomic.Bool
	// fp is the data fingerprint recorded by the caller that created
	// the entry; data0/dataLen identify that caller's backing array so
	// repeat calls with the very same slice skip rehashing. All three
	// are written before the entry is published in the shard map and
	// immutable after, so readers that found the entry under the shard
	// lock may read them lock-free.
	fp      uint64
	data0   *float64
	dataLen int
	d       dist.Distribution
	err     error
}

// CacheOptions tunes NewCacheOpts. The zero value selects the same
// defaults as NewCache.
type CacheOptions struct {
	// Shards is the number of lock domains, rounded up to a power of
	// two. 0 picks a default sized to the host (8×GOMAXPROCS, clamped
	// to [8, 512]). More shards reduce contention at a fixed ~64-byte
	// cost per shard; shard count never affects results.
	Shards int
	// MaxEntries bounds the resident entry count (approximately: the
	// bound is enforced per shard as MaxEntries/Shards, minimum one).
	// When a shard exceeds its allotment the oldest finished entry is
	// evicted (counted in fit_cache_evictions_total); in-flight entries
	// are never evicted, so a momentary overshoot is possible while
	// every resident entry is still fitting. 0 means unbounded — the
	// right choice for sweeps, whose key space is the machine list.
	// A fleet-scale server facing an open-ended key space sets this.
	MaxEntries int
	// PanicOnKeyReuse panics instead of returning ErrKeyReuse, for
	// debugging where the offending call site's stack matters.
	PanicOnKeyReuse bool
}

// NewCache returns an empty unbounded fit cache with default sharding.
func NewCache() *Cache {
	return NewCacheOpts(CacheOptions{})
}

// NewCacheOpts returns an empty fit cache tuned by opts.
func NewCacheOpts(opts CacheOptions) *Cache {
	n := opts.Shards
	if n <= 0 {
		n = 8 * runtime.GOMAXPROCS(0)
		if n < 8 {
			n = 8
		}
		if n > 512 {
			n = 512
		}
	}
	// Round up to a power of two so shard selection is a mask.
	size := 1
	for size < n {
		size <<= 1
	}
	c := &Cache{
		shards: make([]cacheShard, size),
		mask:   uint64(size - 1),
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[cacheKey]*cacheEntry)
	}
	if opts.MaxEntries > 0 {
		c.maxPerShard = opts.MaxEntries / size
		if c.maxPerShard < 1 {
			c.maxPerShard = 1
		}
	}
	c.panicOnReuse = opts.PanicOnKeyReuse
	return c
}

// FNV-1a, the usual offset basis and prime.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// shardFor hashes (key, model) down to a shard index.
func (c *Cache) shardFor(key string, model Model) *cacheShard {
	h := uint64(fnvOffset)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * fnvPrime
	}
	h = (h ^ uint64(model)) * fnvPrime
	return &c.shards[h&c.mask]
}

// fingerprint hashes the sample contents (length plus the exact bits
// of every observation) so key reuse with different data is
// detectable. FNV-1a generalized to 64-bit words — one xor and one
// multiply per observation — because the byte-at-a-time original costs
// 8× for no extra discrimination here: the input is already a stream
// of full words.
func fingerprint(data []float64) uint64 {
	h := (fnvOffset ^ uint64(len(data))) * fnvPrime
	for _, x := range data {
		h = (h ^ math.Float64bits(x)) * fnvPrime
	}
	return h
}

// sameSlice reports whether data is the exact slice (backing array and
// length) the entry was created with — the common steady state, where
// a sweep or server passes one resident history per key — letting the
// hit path skip rehashing. A caller that mutates that array in place
// defeats the reuse check; passing fresh contents in any other slice
// is always fingerprinted.
func (e *cacheEntry) sameSlice(data []float64) bool {
	return len(data) == e.dataLen && (len(data) == 0 || &data[0] == e.data0)
}

// Fit returns the memoized fit of the model family to data under key,
// estimating it on first use. A nil *Cache is valid and simply fits
// every time (no memoization), which keeps call sites unconditional.
func (c *Cache) Fit(key string, model Model, data []float64) (dist.Distribution, error) {
	if c == nil {
		return Fit(model, data)
	}
	k := cacheKey{key: key, model: model}
	sh := c.shardFor(key, model)
	sh.mu.Lock()
	e, ok := sh.entries[k]
	if !ok {
		e = &cacheEntry{fp: fingerprint(data), dataLen: len(data)}
		if len(data) > 0 {
			e.data0 = &data[0]
		}
		sh.entries[k] = e
		if c.maxPerShard > 0 {
			sh.order = append(sh.order, k)
			c.evictLocked(sh)
		}
	}
	sh.mu.Unlock()
	switch {
	case !ok:
		metrics.cacheMisses.Inc()
	case e.done.Load():
		metrics.cacheHits.Inc()
	default:
		// The entry exists but its fit has not finished: this caller is
		// about to block inside once.Do behind the in-flight fit. (The
		// fit may finish between the Load and the Do — the wait is then
		// momentary, but it still raced an in-flight estimate.)
		metrics.cacheWaits.Inc()
	}
	if ok && !e.sameSlice(data) && e.fp != fingerprint(data) {
		err := fmt.Errorf("%w: (%q, %v)", ErrKeyReuse, key, model)
		if c.panicOnReuse {
			panic(err)
		}
		return nil, err
	}
	e.once.Do(func() {
		e.d, e.err = Fit(model, data)
		e.done.Store(true)
	})
	return e.d, e.err
}

// evictLocked trims sh back to the per-shard allotment by evicting the
// oldest finished entries. In-flight entries are skipped — a waiter is
// blocked on them — which can leave the shard momentarily over its
// bound; the next insert retries. Caller holds sh.mu.
func (c *Cache) evictLocked(sh *cacheShard) {
	for len(sh.entries) > c.maxPerShard {
		evicted := false
		for i, k := range sh.order {
			if e := sh.entries[k]; e != nil && e.done.Load() {
				delete(sh.entries, k)
				sh.order = append(sh.order[:i], sh.order[i+1:]...)
				metrics.cacheEvictions.Inc()
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything resident is still fitting
		}
	}
}

// Len reports the number of distinct (key, model) entries resident
// (fitted or in flight). It sums the shards one lock at a time — there
// is no global lock to take — so under concurrent inserts the total is
// a consistent-enough snapshot, exact once writers quiesce.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}
