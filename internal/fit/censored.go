package fit

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/cycleharvest/ckptsched/internal/dist"
	"github.com/cycleharvest/ckptsched/internal/mathx"
)

// Observation is one possibly right-censored availability measurement.
// A censored observation records that the resource was still available
// after Value seconds (the monitor was still running when the
// measurement campaign ended — the paper's §5.3 right-censoring), so
// the true lifetime exceeds Value.
type Observation struct {
	Value    float64
	Censored bool
}

// Exact wraps plain durations as uncensored observations.
func Exact(values []float64) []Observation {
	out := make([]Observation, len(values))
	for i, v := range values {
		out[i] = Observation{Value: v}
	}
	return out
}

// cleanObs clamps and filters observations like clean does for plain
// durations, and reports the number of uncensored events.
func cleanObs(obs []Observation) ([]Observation, int, error) {
	out := make([]Observation, 0, len(obs))
	events := 0
	for _, o := range obs {
		if math.IsNaN(o.Value) || math.IsInf(o.Value, 0) {
			continue
		}
		if o.Value < DurationFloor {
			o.Value = DurationFloor
		}
		out = append(out, o)
		if !o.Censored {
			events++
		}
	}
	if len(out) == 0 {
		return nil, 0, ErrNoData
	}
	if events == 0 {
		return nil, 0, errors.New("fit: all observations censored; lifetimes unidentifiable")
	}
	return out, events, nil
}

// ExponentialCensored fits an exponential by maximum likelihood with
// right censoring: λ̂ = (#events) / Σ(all exposure times).
func ExponentialCensored(obs []Observation) (dist.Exponential, error) {
	xs, events, err := cleanObs(obs)
	if err != nil {
		return dist.Exponential{}, err
	}
	exposure := 0.0
	for _, o := range xs {
		exposure += o.Value
	}
	return dist.NewExponential(float64(events) / exposure), nil
}

// WeibullCensored fits a Weibull by maximum likelihood with right
// censoring. With d uncensored events, the profile score becomes
//
//	Σ_all xᵢ^α ln xᵢ / Σ_all xᵢ^α − 1/α − (1/d) Σ_events ln xᵢ = 0,
//
// and β̂ = (Σ_all xᵢ^α̂ / d)^(1/α̂); all observations contribute
// exposure, only events contribute the log-mean term.
func WeibullCensored(obs []Observation) (dist.Weibull, error) {
	xs, events, err := cleanObs(obs)
	if err != nil {
		return dist.Weibull{}, err
	}
	d := float64(events)
	meanLogEvents := 0.0
	xmax := xs[0].Value
	allEqual := true
	for _, o := range xs {
		if !o.Censored {
			meanLogEvents += math.Log(o.Value)
		}
		if o.Value > xmax {
			xmax = o.Value
		}
		if o.Value != xs[0].Value {
			allEqual = false
		}
	}
	meanLogEvents /= d
	if allEqual {
		return dist.NewWeibull(50, xs[0].Value), nil
	}

	score := func(alpha float64) float64 {
		var sw, swl float64
		for _, o := range xs {
			w := math.Pow(o.Value/xmax, alpha)
			sw += w
			swl += w * math.Log(o.Value)
		}
		return swl/sw - 1/alpha - meanLogEvents
	}
	lo, hi, err := mathx.ExpandBracket(score, 1e-3, 1.0, 40)
	if err != nil {
		return dist.Weibull{}, fmt.Errorf("fit: censored weibull bracket: %w", err)
	}
	alpha, err := mathx.Bisect(score, lo, hi, 1e-10)
	if err != nil {
		return dist.Weibull{}, fmt.Errorf("fit: censored weibull solve: %w", err)
	}
	sum := 0.0
	for _, o := range xs {
		sum += math.Pow(o.Value, alpha)
	}
	beta := math.Pow(sum/d, 1/alpha)
	return dist.NewWeibull(alpha, beta), nil
}

// HyperexpCensored fits a k-phase hyperexponential by EM with right
// censoring. For a censored observation the E step assigns
// responsibilities from per-phase survival (γᵢⱼ ∝ pᵢ e^(-λᵢxⱼ)) and
// the M step credits phase i with the expected total lifetime
// xⱼ + 1/λᵢ (memorylessness within a phase); events behave as in the
// uncensored EM.
func HyperexpCensored(obs []Observation, k int, opts EMOptions) (EMResult, error) {
	if k < 1 {
		return EMResult{}, fmt.Errorf("fit: hyperexponential needs k >= 1, got %d", k)
	}
	xs, _, err := cleanObs(obs)
	if err != nil {
		return EMResult{}, err
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 500
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-9
	}
	n := len(xs)
	if n < k {
		k = n
	}

	sorted := make([]float64, n)
	for i, o := range xs {
		sorted[i] = o.Value
	}
	sort.Float64s(sorted)
	p := make([]float64, k)
	lam := make([]float64, k)
	for i, m := range quantileGroups(sorted, k) {
		p[i] = 1 / float64(k)
		if m <= 0 {
			m = DurationFloor
		}
		lam[i] = 1 / m
	}
	for i := 1; i < k; i++ {
		if lam[i] >= lam[i-1] {
			lam[i] = lam[i-1] * 0.5
		}
	}

	const (
		lamMin = 1e-12
		lamMax = 1e3
		pMin   = 1e-12
	)
	// Flat row-major k×n responsibility matrix, as in Hyperexp: one
	// contiguous backing slice for cache locality, loop order
	// untouched so fits stay bitwise identical.
	gamma := make([]float64, k*n)
	prevLL := math.Inf(-1)
	iters := 0
	converged := false
	for iter := range opts.MaxIter {
		iters = iter + 1
		ll := 0.0
		for j, o := range xs {
			den := 0.0
			for i := range k {
				var g float64
				if o.Censored {
					g = p[i] * math.Exp(-lam[i]*o.Value) // survival
				} else {
					g = p[i] * lam[i] * math.Exp(-lam[i]*o.Value) // density
				}
				gamma[i*n+j] = g
				den += g
			}
			if den <= 0 {
				slow := 0
				for i := 1; i < k; i++ {
					if lam[i] < lam[slow] {
						slow = i
					}
				}
				for i := range k {
					gamma[i*n+j] = 0
				}
				gamma[slow*n+j] = 1
				ll += math.Log(pMin)
				continue
			}
			for i := range k {
				gamma[i*n+j] /= den
			}
			ll += math.Log(den)
		}
		for i := range k {
			var sg, sgx float64
			row := gamma[i*n : (i+1)*n]
			for j, o := range xs {
				sg += row[j]
				life := o.Value
				if o.Censored {
					life += 1 / lam[i] // expected residual within phase i
				}
				sgx += row[j] * life
			}
			p[i] = math.Max(sg/float64(n), pMin)
			if sgx <= 0 {
				lam[i] = lamMax
			} else {
				lam[i] = math.Min(math.Max(sg/sgx, lamMin), lamMax)
			}
		}
		if ll-prevLL < opts.Tol*math.Max(1, math.Abs(ll)) && iter > 0 {
			prevLL = ll
			converged = true
			break
		}
		prevLL = ll
	}
	return EMResult{
		Dist:    dist.NewHyperexponential(p, lam),
		LogLik:  prevLL,
		Iters:   iters,
		Converg: converged,
	}, nil
}

// FitCensored dispatches censoring-aware estimation by model family.
func FitCensored(m Model, obs []Observation) (dist.Distribution, error) {
	switch m {
	case ModelExponential:
		return ExponentialCensored(obs)
	case ModelWeibull:
		return WeibullCensored(obs)
	case ModelHyperexp2:
		r, err := HyperexpCensored(obs, 2, EMOptions{})
		return r.Dist, err
	case ModelHyperexp3:
		r, err := HyperexpCensored(obs, 3, EMOptions{})
		return r.Dist, err
	}
	return nil, fmt.Errorf("fit: unknown model %v", m)
}

// CensoredLogLikelihood evaluates Σ_events ln f(x) + Σ_censored ln S(x)
// under d.
func CensoredLogLikelihood(d dist.Distribution, obs []Observation) float64 {
	xs, _, err := cleanObs(obs)
	if err != nil {
		return math.Inf(-1)
	}
	ll := 0.0
	for _, o := range xs {
		var v float64
		if o.Censored {
			v = d.Survival(o.Value)
		} else {
			v = d.PDF(o.Value)
		}
		if v <= 0 {
			return math.Inf(-1)
		}
		ll += math.Log(v)
	}
	return ll
}
