package fit

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/cycleharvest/ckptsched/internal/obs"
)

var cacheTestData = []float64{120, 340, 900, 1500, 2200, 4100, 8000, 9500}

// TestCacheKeyReuse pins the keying-contract enforcement: the same
// (key, model) with different data returns ErrKeyReuse instead of
// silently serving the first fit, while byte-identical data (even in a
// freshly allocated slice) stays a plain hit.
func TestCacheKeyReuse(t *testing.T) {
	c := NewCache()
	d1, err := c.Fit("m", ModelExponential, cacheTestData)
	if err != nil {
		t.Fatal(err)
	}
	// Same contents, different backing array: still the same entry.
	clone := append([]float64(nil), cacheTestData...)
	d2, err := c.Fit("m", ModelExponential, clone)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Error("identical data should hit the memoized fit")
	}
	// Different contents under the same key: the contract violation.
	other := append([]float64(nil), cacheTestData...)
	other[0] = 121
	if _, err := c.Fit("m", ModelExponential, other); !errors.Is(err, ErrKeyReuse) {
		t.Fatalf("reused key with different data: err = %v, want ErrKeyReuse", err)
	}
	// The violation does not poison the entry.
	if _, err := c.Fit("m", ModelExponential, cacheTestData); err != nil {
		t.Fatalf("original data after a reuse error: %v", err)
	}
	// Same data under a different model or key is fine.
	if _, err := c.Fit("m", ModelWeibull, other); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Fit("m2", ModelExponential, other); err != nil {
		t.Fatal(err)
	}
}

func TestCacheKeyReusePanicMode(t *testing.T) {
	c := NewCacheOpts(CacheOptions{PanicOnKeyReuse: true})
	if _, err := c.Fit("m", ModelExponential, cacheTestData); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrKeyReuse) {
			t.Fatalf("recover() = %v, want an ErrKeyReuse panic", r)
		}
	}()
	other := append([]float64(nil), cacheTestData...)
	other[0] = 121
	c.Fit("m", ModelExponential, other)
	t.Fatal("expected a panic")
}

// TestCacheShardInvariance pins that shard count is invisible: every
// shard count returns the same distributions as a direct Fit.
func TestCacheShardInvariance(t *testing.T) {
	want, err := Fit(ModelWeibull, cacheTestData)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 7, 64} {
		c := NewCacheOpts(CacheOptions{Shards: shards})
		for i := 0; i < 20; i++ {
			key := fmt.Sprintf("machine%04d", i)
			got, err := c.Fit(key, ModelWeibull, cacheTestData)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("shards=%d key=%s: %v, want %v", shards, key, got, want)
			}
		}
		if c.Len() != 20 {
			t.Errorf("shards=%d: Len = %d, want 20", shards, c.Len())
		}
	}
}

// TestCacheBounded pins size-gated eviction: a bounded cache holds at
// most MaxEntries finished entries, counts what it drops, and refits
// an evicted key on return (as a fresh miss, not a reuse error — the
// fingerprint leaves with the entry).
func TestCacheBounded(t *testing.T) {
	reg := obs.NewRegistry()
	Instrument(reg)
	defer Instrument(nil)

	// One shard so the bound and the eviction order are exact.
	c := NewCacheOpts(CacheOptions{Shards: 1, MaxEntries: 3})
	for i := 0; i < 5; i++ {
		if _, err := c.Fit(fmt.Sprintf("m%d", i), ModelExponential, cacheTestData); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Len(); got != 3 {
		t.Errorf("Len = %d, want 3 (bounded)", got)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["fit_cache_evictions_total"]; got != 2 {
		t.Errorf("evictions = %d, want 2", got)
	}
	// m0 and m1 were evicted oldest-first; returning m0 with *different*
	// data refits without ErrKeyReuse and is classified a miss.
	other := append([]float64(nil), cacheTestData...)
	other[0] = 121
	if _, err := c.Fit("m0", ModelExponential, other); err != nil {
		t.Fatalf("evicted key with new data: %v", err)
	}
	snap = reg.Snapshot()
	if got := snap.Counters["fit_cache_misses_total"]; got != 6 {
		t.Errorf("misses = %d, want 6 (5 inserts + 1 re-insert)", got)
	}
	// The still-resident newest key is a hit, not a refit.
	if _, err := c.Fit("m4", ModelExponential, cacheTestData); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters["fit_cache_hits_total"]; got != 1 {
		t.Errorf("hits = %d, want 1", got)
	}
}

// TestCacheClassificationContention drives 64 goroutines over a shared
// key set through both the sharded cache and the single-mutex
// reference, and pins that the hit/miss/wait classification partitions
// identically: misses equal the distinct-entry count in both, every
// call is classified exactly once, and the hit+wait remainder matches.
// (The hit/wait split itself is timing-dependent by design — a wait is
// a hit that arrived while the fit was still in flight.)
func TestCacheClassificationContention(t *testing.T) {
	const (
		goroutines = 64
		keys       = 16
		rounds     = 8
	)
	reg := obs.NewRegistry()
	Instrument(reg)
	defer Instrument(nil)

	c := NewCache()
	ref := newMutexCache()
	var start, wg sync.WaitGroup
	start.Add(1)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			start.Wait()
			for r := 0; r < rounds; r++ {
				for i := 0; i < keys; i++ {
					// Offset per goroutine so lock acquisition interleaves.
					k := fmt.Sprintf("m%02d", (i+g)%keys)
					if _, err := c.Fit(k, ModelExponential, cacheTestData); err != nil {
						t.Error(err)
					}
					if _, err := ref.Fit(k, ModelExponential, cacheTestData); err != nil {
						t.Error(err)
					}
				}
			}
		}(g)
	}
	start.Done()
	wg.Wait()

	const calls = goroutines * keys * rounds
	snap := reg.Snapshot()
	hits := snap.Counters["fit_cache_hits_total"]
	misses := snap.Counters["fit_cache_misses_total"]
	waits := snap.Counters["fit_cache_waits_total"]
	if misses != keys {
		t.Errorf("sharded misses = %d, want %d (one per distinct entry)", misses, keys)
	}
	if hits+misses+waits != calls {
		t.Errorf("sharded classified %d of %d calls", hits+misses+waits, calls)
	}
	if rm := ref.misses.Load(); rm != misses {
		t.Errorf("reference misses = %d, sharded = %d", rm, misses)
	}
	if refRest, rest := ref.hits.Load()+ref.waits.Load(), hits+waits; refRest != rest {
		t.Errorf("reference hits+waits = %d, sharded = %d", refRest, rest)
	}
	if c.Len() != ref.Len() {
		t.Errorf("Len: sharded %d, reference %d", c.Len(), ref.Len())
	}
}

// TestCacheSingleFlightSharded pins that sharding kept single-flight:
// concurrent callers for one cold entry run exactly one fit.
func TestCacheSingleFlightSharded(t *testing.T) {
	reg := obs.NewRegistry()
	Instrument(reg)
	defer Instrument(nil)

	c := NewCache()
	const callers = 16
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Fit("hot", ModelHyperexp2, cacheTestData); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	snap := reg.Snapshot()
	if fits := snap.Counters["fit_em_fits_total"]; fits != 1 {
		t.Errorf("EM ran %d times for one entry, want 1", fits)
	}
	if misses := snap.Counters["fit_cache_misses_total"]; misses != 1 {
		t.Errorf("misses = %d, want 1", misses)
	}
}

// TestCacheNilStillFits pins the nil-cache passthrough.
func TestCacheNilStillFits(t *testing.T) {
	var c *Cache
	if _, err := c.Fit("x", ModelExponential, cacheTestData); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Error("nil cache Len != 0")
	}
}
