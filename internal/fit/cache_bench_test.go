package fit

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

// contentionGoroutines is the concurrency level both cache-contention
// benchmarks run at. GOMAXPROCS is forced up to match for the duration
// of the benchmark so the goroutines are backed by real OS threads and
// lock contention is physical even on a small CI box: with fewer
// threads than goroutines a mutex is almost never held across a
// preemption point and the single-mutex reference measures its
// uncontended fast path, which is not the regime the sharded rewrite
// exists for.
const contentionGoroutines = 16

// benchCacheHits drives hit-path lookups (the steady state of a
// long-running scheduling server) from contentionGoroutines goroutines
// over a pre-fitted key set through any cache with a Fit method.
func benchCacheHits(b *testing.B, fit func(key string, model Model, data []float64)) {
	const nkeys = 512
	keys := make([]string, nkeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("machine%04d", i)
	}
	data := cacheTestData
	for _, k := range keys {
		fit(k, ModelExponential, data)
	}
	prev := runtime.GOMAXPROCS(contentionGoroutines)
	defer runtime.GOMAXPROCS(prev)
	var next atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Per-goroutine stride offset so the goroutines sweep the key
		// space out of phase instead of convoying on one entry.
		i := next.Add(nkeys / 4)
		for pb.Next() {
			fit(keys[i%nkeys], ModelExponential, data)
			i++
		}
	})
}

// BenchmarkFitCacheContention measures the sharded cache's hit-path
// throughput at 16 goroutines; BENCH gates ns/op and its zero-alloc
// contract. Compare against BenchmarkFitCacheContentionMutexRef (the
// retired single-mutex design, kept as a reference implementation):
// with ≥4 hardware threads the reference's global lock goes contended
// and the shard rewrite separates by ≥4×, while per-op cost at either
// concurrency extreme stays at the reference's uncontended fast path
// (~60 ns on the 1-core 2.1 GHz CI box, where a single hardware
// thread timeslices the goroutines and no mutex is ever physically
// contended — both benchmarks measure equal there by construction).
func BenchmarkFitCacheContention(b *testing.B) {
	// RunParallel spawns one goroutine per P once GOMAXPROCS is forced
	// to contentionGoroutines, so no SetParallelism is needed.
	c := NewCache()
	benchCacheHits(b, func(key string, model Model, data []float64) {
		c.Fit(key, model, data)
	})
}

// BenchmarkFitCacheContentionMutexRef is the same workload against the
// single-mutex reference cache. Recorded for the ratio, not gated: the
// reference never changes, and a heavily contended mutex benchmark is
// scheduler-noisy by nature.
func BenchmarkFitCacheContentionMutexRef(b *testing.B) {
	c := newMutexCache()
	benchCacheHits(b, func(key string, model Model, data []float64) {
		c.Fit(key, model, data)
	})
}
