package fit

import (
	"sync"
	"testing"

	"github.com/cycleharvest/ckptsched/internal/obs"
)

// TestCacheMetricsClassification pins the hit/miss/wait partition of
// Cache.Fit calls and the EM fit/iteration counters.
func TestCacheMetricsClassification(t *testing.T) {
	reg := obs.NewRegistry()
	Instrument(reg)
	defer Instrument(nil)

	data := []float64{120, 340, 900, 1500, 2200, 4100, 8000, 9500}
	c := NewCache()
	if _, err := c.Fit("m1", ModelExponential, data); err != nil { // miss
		t.Fatal(err)
	}
	if _, err := c.Fit("m1", ModelExponential, data); err != nil { // hit
		t.Fatal(err)
	}
	if _, err := c.Fit("m2", ModelHyperexp2, data); err != nil { // miss + EM
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["fit_cache_misses_total"]; got != 2 {
		t.Errorf("misses = %d, want 2", got)
	}
	if got := snap.Counters["fit_cache_hits_total"]; got != 1 {
		t.Errorf("hits = %d, want 1", got)
	}
	if got := snap.Counters["fit_cache_waits_total"]; got != 0 {
		t.Errorf("waits = %d, want 0", got)
	}
	if fits := snap.Counters["fit_em_fits_total"]; fits != 1 {
		t.Errorf("em fits = %d, want 1", fits)
	}
	if iters := snap.Counters["fit_em_iterations_total"]; iters == 0 {
		t.Error("em iterations not counted")
	}

	// Concurrent callers on one fresh entry: exactly one miss, the rest
	// split hit/wait — but every call is classified exactly once.
	const callers = 8
	var wg sync.WaitGroup
	for range callers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Fit("m3", ModelWeibull, data); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	snap2 := reg.Snapshot()
	classified := (snap2.Counters["fit_cache_misses_total"] - 2) +
		(snap2.Counters["fit_cache_hits_total"] - 1) +
		snap2.Counters["fit_cache_waits_total"]
	if classified != callers {
		t.Errorf("classified %d of %d concurrent calls", classified, callers)
	}
	if snap2.Counters["fit_cache_misses_total"] != 3 {
		t.Errorf("misses = %d, want 3 (one per distinct entry)", snap2.Counters["fit_cache_misses_total"])
	}
}
