package fit

import (
	"sync"
	"sync/atomic"

	"github.com/cycleharvest/ckptsched/internal/dist"
)

// mutexCache is the pre-sharding Cache kept verbatim as a reference:
// one global mutex in front of one map, single-flight per entry. The
// classification test pins the sharded cache's hit/miss/wait partition
// against this implementation's, and BenchmarkFitCacheContention
// measures the throughput the sharded rewrite buys over it. Instead of
// the obs counters it tallies classifications locally so the two
// implementations can be compared inside one registry-free test.
type mutexCache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry

	hits, misses, waits atomic.Uint64
}

func newMutexCache() *mutexCache {
	return &mutexCache{entries: make(map[cacheKey]*cacheEntry)}
}

func (c *mutexCache) Fit(key string, model Model, data []float64) (dist.Distribution, error) {
	k := cacheKey{key: key, model: model}
	c.mu.Lock()
	e, ok := c.entries[k]
	if !ok {
		e = &cacheEntry{}
		c.entries[k] = e
	}
	c.mu.Unlock()
	switch {
	case !ok:
		c.misses.Add(1)
	case e.done.Load():
		c.hits.Add(1)
	default:
		c.waits.Add(1)
	}
	e.once.Do(func() {
		e.d, e.err = Fit(model, data)
		e.done.Store(true)
	})
	return e.d, e.err
}

func (c *mutexCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
