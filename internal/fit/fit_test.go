package fit

import (
	"math"
	"math/rand"
	"testing"

	"github.com/cycleharvest/ckptsched/internal/dist"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	return diff <= tol || diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func sample(d dist.Distribution, n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = d.Rand(rng)
	}
	return xs
}

func TestExponentialMLERecoversRate(t *testing.T) {
	truth := dist.NewExponential(1.0 / 5000)
	xs := sample(truth, 50000, 1)
	got, err := Exponential(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got.Lambda, truth.Lambda, 0.02) {
		t.Errorf("λ̂ = %g, want %g", got.Lambda, truth.Lambda)
	}
}

func TestExponentialMLEEqualsInverseMean(t *testing.T) {
	xs := []float64{100, 200, 300}
	got, err := Exponential(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got.Lambda, 1.0/200, 1e-12) {
		t.Errorf("λ̂ = %g, want 1/200", got.Lambda)
	}
}

func TestExponentialErrors(t *testing.T) {
	if _, err := Exponential(nil); err == nil {
		t.Error("empty data should error")
	}
	if _, err := Exponential([]float64{math.NaN(), math.Inf(1)}); err == nil {
		t.Error("all-invalid data should error")
	}
}

func TestCleanClampsToFloor(t *testing.T) {
	got, err := clean([]float64{0, 0.5, 100, math.NaN()})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != DurationFloor || got[1] != DurationFloor || got[2] != 100 {
		t.Errorf("clean = %v", got)
	}
}

func TestWeibullMLERecoversParameters(t *testing.T) {
	cases := []dist.Weibull{
		dist.NewWeibull(0.43, 3409), // the paper's machine
		dist.NewWeibull(1.0, 500),
		dist.NewWeibull(2.2, 120),
	}
	for _, truth := range cases {
		xs := sample(truth, 40000, 7)
		got, err := Weibull(xs)
		if err != nil {
			t.Fatalf("%v: %v", truth, err)
		}
		if !almostEqual(got.Shape, truth.Shape, 0.05) {
			t.Errorf("%v: shape = %g", truth, got.Shape)
		}
		if !almostEqual(got.Scale, truth.Scale, 0.05) {
			t.Errorf("%v: scale = %g", truth, got.Scale)
		}
	}
}

func TestWeibullMLESmallSample(t *testing.T) {
	// The paper fits on just 25 observations; the estimator must stay
	// well-behaved there even if noisy.
	truth := dist.NewWeibull(0.43, 3409)
	for seed := int64(0); seed < 20; seed++ {
		xs := sample(truth, 25, seed)
		got, err := Weibull(xs)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got.Shape <= 0 || got.Shape > 5 || got.Scale <= 0 {
			t.Errorf("seed %d: implausible fit %v", seed, got)
		}
	}
}

func TestWeibullMLEScoreZeroAtSolution(t *testing.T) {
	// The fitted parameters must satisfy the likelihood equations:
	// β̂^α̂ = Σx^α̂/n and the profile score is 0.
	truth := dist.NewWeibull(0.8, 1000)
	raw := sample(truth, 5000, 3)
	got, err := Weibull(raw)
	if err != nil {
		t.Fatal(err)
	}
	// Compare on the same cleaned data the estimator saw.
	xs, err := clean(raw)
	if err != nil {
		t.Fatal(err)
	}
	n := float64(len(xs))
	sum := 0.0
	for _, x := range xs {
		sum += math.Pow(x, got.Shape)
	}
	if !almostEqual(math.Pow(got.Scale, got.Shape), sum/n, 1e-6) {
		t.Errorf("scale equation violated")
	}
}

func TestWeibullDegenerateSample(t *testing.T) {
	got, err := Weibull([]float64{100, 100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if got.Scale != 100 || got.Shape < 10 {
		t.Errorf("degenerate fit = %v, want sharp peak at 100", got)
	}
}

func TestWeibullBeatsExponentialOnHeavyTail(t *testing.T) {
	truth := dist.NewWeibull(0.43, 3409)
	xs := sample(truth, 3000, 5)
	w, err := Weibull(xs)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Exponential(xs)
	if err != nil {
		t.Fatal(err)
	}
	if LogLikelihood(w, xs) <= LogLikelihood(e, xs) {
		t.Error("Weibull should dominate exponential on heavy-tailed data")
	}
	if KS(w, xs) >= KS(e, xs) {
		t.Error("Weibull KS should beat exponential on heavy-tailed data")
	}
}

func TestHyperexpEMMonotoneLikelihood(t *testing.T) {
	// Re-run EM step by step and assert the log-likelihood never
	// decreases — the defining EM invariant.
	truth := dist.NewHyperexponential([]float64{0.7, 0.3}, []float64{0.01, 0.0005})
	xs := sample(truth, 2000, 11)
	prev := math.Inf(-1)
	for iters := 1; iters <= 60; iters += 7 {
		r, err := Hyperexp(xs, 2, EMOptions{MaxIter: iters, Tol: 1e-300})
		if err != nil {
			t.Fatal(err)
		}
		if r.LogLik < prev-1e-6 {
			t.Errorf("log-likelihood decreased at %d iters: %g -> %g", iters, prev, r.LogLik)
		}
		prev = r.LogLik
	}
}

func TestHyperexpEMRecoversMixture(t *testing.T) {
	truth := dist.NewHyperexponential([]float64{0.6, 0.4}, []float64{0.02, 0.0002})
	xs := sample(truth, 60000, 13)
	r, err := Hyperexp(xs, 2, EMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Converg {
		t.Error("EM did not converge")
	}
	h := r.Dist
	// Sort phases by rate for comparison.
	fast, slow := 0, 1
	if h.Lambda[fast] < h.Lambda[slow] {
		fast, slow = slow, fast
	}
	if !almostEqual(h.Lambda[fast], 0.02, 0.15) {
		t.Errorf("fast rate = %g, want ≈0.02", h.Lambda[fast])
	}
	if !almostEqual(h.Lambda[slow], 0.0002, 0.15) {
		t.Errorf("slow rate = %g, want ≈0.0002", h.Lambda[slow])
	}
	if !almostEqual(h.P[fast], 0.6, 0.1) {
		t.Errorf("fast weight = %g, want ≈0.6", h.P[fast])
	}
	// The fitted mean must track the sample mean closely (EM for
	// exponential mixtures preserves the first moment at convergence).
	sm := 0.0
	for _, x := range xs {
		sm += x
	}
	sm /= float64(len(xs))
	if !almostEqual(h.Mean(), sm, 0.01) {
		t.Errorf("fitted mean %g, sample mean %g", h.Mean(), sm)
	}
}

func TestHyperexpEMSmallSample(t *testing.T) {
	truth := dist.NewWeibull(0.43, 3409)
	for seed := int64(0); seed < 15; seed++ {
		xs := sample(truth, 25, seed)
		for _, k := range []int{2, 3} {
			r, err := Hyperexp(xs, k, EMOptions{})
			if err != nil {
				t.Fatalf("seed %d k %d: %v", seed, k, err)
			}
			if r.Dist.Mean() <= 0 || math.IsInf(r.Dist.Mean(), 0) {
				t.Errorf("seed %d k %d: bad mean %g", seed, k, r.Dist.Mean())
			}
		}
	}
}

func TestHyperexpFewerPointsThanPhases(t *testing.T) {
	r, err := Hyperexp([]float64{50, 500}, 3, EMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Dist.Phases() > 2 {
		t.Errorf("phases = %d, want <= 2 for 2 observations", r.Dist.Phases())
	}
}

func TestHyperexpErrors(t *testing.T) {
	if _, err := Hyperexp(nil, 2, EMOptions{}); err == nil {
		t.Error("empty data should error")
	}
	if _, err := Hyperexp([]float64{1, 2}, 0, EMOptions{}); err == nil {
		t.Error("k=0 should error")
	}
}

func TestHyperexpOnePhaseMatchesExponentialMLE(t *testing.T) {
	xs := []float64{100, 300, 800, 50, 1200}
	r, err := Hyperexp(xs, 1, EMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := Exponential(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r.Dist.Lambda[0], e.Lambda, 1e-6) {
		t.Errorf("1-phase EM rate %g, MLE %g", r.Dist.Lambda[0], e.Lambda)
	}
}

func TestLogNormalMLERecoversParameters(t *testing.T) {
	truth := dist.NewLogNormal(6.5, 1.1)
	xs := sample(truth, 50000, 61)
	got, err := LogNormal(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got.Mu, 6.5, 0.01) || !almostEqual(got.Sigma, 1.1, 0.02) {
		t.Errorf("fit = %v, want (6.5, 1.1)", got)
	}
}

func TestLogNormalMLEDegenerateAndErrors(t *testing.T) {
	if _, err := LogNormal(nil); err == nil {
		t.Error("empty should error")
	}
	got, err := LogNormal([]float64{42, 42, 42})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got.Quantile(0.5), 42, 1e-6) {
		t.Errorf("degenerate median = %g", got.Quantile(0.5))
	}
}

func TestLogNormalCompetitiveOnLogNormalData(t *testing.T) {
	truth := dist.NewLogNormal(7, 1.4)
	xs := sample(truth, 3000, 63)
	ln, err := LogNormal(xs)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Weibull(xs)
	if err != nil {
		t.Fatal(err)
	}
	if LogLikelihood(ln, xs) <= LogLikelihood(w, xs) {
		t.Error("lognormal should dominate Weibull on lognormal data")
	}
	if KS(ln, xs) >= KS(w, xs) {
		t.Error("lognormal KS should beat Weibull on lognormal data")
	}
}

func TestModelRoundTrip(t *testing.T) {
	for _, m := range Models {
		got, err := ParseModel(m.String())
		if err != nil {
			t.Fatal(err)
		}
		if got != m {
			t.Errorf("round trip %v -> %v", m, got)
		}
	}
	if _, err := ParseModel("bogus"); err == nil {
		t.Error("bogus model should error")
	}
	letters := map[Model]string{
		ModelExponential: "e", ModelWeibull: "w", ModelHyperexp2: "2", ModelHyperexp3: "3",
	}
	for m, want := range letters {
		if got := m.Letter(); got != want {
			t.Errorf("%v letter = %q, want %q", m, got, want)
		}
	}
}

func TestFitDispatch(t *testing.T) {
	truth := dist.NewWeibull(0.6, 2000)
	xs := sample(truth, 500, 17)
	for _, m := range Models {
		d, err := Fit(m, xs)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if d.Mean() <= 0 {
			t.Errorf("%v: non-positive mean", m)
		}
	}
}

func TestAllRanksHeavyTailCorrectly(t *testing.T) {
	truth := dist.NewWeibull(0.43, 3409)
	xs := sample(truth, 4000, 23)
	fits, err := All(xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(fits) != 4 {
		t.Fatalf("expected 4 fits, got %d", len(fits))
	}
	best, err := BestByAIC(fits)
	if err != nil {
		t.Fatal(err)
	}
	if best.Model == ModelExponential {
		t.Error("exponential should never win AIC on strongly heavy-tailed data")
	}
	bestKS, err := BestByKS(fits)
	if err != nil {
		t.Fatal(err)
	}
	if bestKS.Model == ModelExponential {
		t.Error("exponential should never win KS on strongly heavy-tailed data")
	}
	// AIC consistency: AIC = 2k - 2 lnL.
	for _, f := range fits {
		if !almostEqual(f.AIC, 2*float64(NumParams(f.Dist))-2*f.LogLik, 1e-9) {
			t.Errorf("%v: inconsistent AIC", f.Model)
		}
	}
}

func TestBestEmpty(t *testing.T) {
	if _, err := BestByAIC(nil); err == nil {
		t.Error("BestByAIC(nil) should error")
	}
	if _, err := BestByKS(nil); err == nil {
		t.Error("BestByKS(nil) should error")
	}
}

func TestNumParams(t *testing.T) {
	if got := NumParams(dist.NewExponential(1)); got != 1 {
		t.Errorf("exp params = %d", got)
	}
	if got := NumParams(dist.NewWeibull(1, 1)); got != 2 {
		t.Errorf("weibull params = %d", got)
	}
	h3 := dist.NewHyperexponential([]float64{0.3, 0.3, 0.4}, []float64{1, 2, 3})
	if got := NumParams(h3); got != 5 {
		t.Errorf("hyperexp3 params = %d", got)
	}
	if got := NumParams(dist.NewConditional(h3, 5)); got != 5 {
		t.Errorf("conditional params = %d", got)
	}
}

func TestLogLikelihoodInfForImpossibleData(t *testing.T) {
	// A fitted distribution should never assign zero density to
	// in-range data, but Weibull shape>1 has zero density only at 0,
	// which clean() clamps away; construct impossibility via an
	// unsupported point by using a conditional at huge age where
	// survival underflows.
	c := dist.NewConditional(dist.NewWeibull(3, 10), 1e9)
	if got := LogLikelihood(c, []float64{5}); !math.IsInf(got, -1) {
		t.Errorf("expected -Inf log-likelihood, got %g", got)
	}
}
