package fit

import (
	"math"
	"testing"

	"github.com/cycleharvest/ckptsched/internal/dist"
)

// censorAt applies Type-I (fixed-time) right censoring at limit.
func censorAt(values []float64, limit float64) []Observation {
	out := make([]Observation, len(values))
	for i, v := range values {
		if v > limit {
			out[i] = Observation{Value: limit, Censored: true}
		} else {
			out[i] = Observation{Value: v}
		}
	}
	return out
}

func TestExactWrapping(t *testing.T) {
	obs := Exact([]float64{1, 2})
	if len(obs) != 2 || obs[0].Censored || obs[1].Value != 2 {
		t.Errorf("Exact = %+v", obs)
	}
}

func TestExponentialCensoredRecoversRate(t *testing.T) {
	truth := dist.NewExponential(1.0 / 5000)
	raw := sample(truth, 40000, 31)
	// Censor at the ~63rd percentile: a third of the data is censored.
	obs := censorAt(raw, 5000)
	got, err := ExponentialCensored(obs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got.Lambda, truth.Lambda, 0.03) {
		t.Errorf("censored λ̂ = %g, want %g", got.Lambda, truth.Lambda)
	}
	// The naive fit that treats censored values as deaths is biased
	// high (it thinks lifetimes are shorter than they are).
	vals := make([]float64, len(obs))
	for i, o := range obs {
		vals[i] = o.Value
	}
	naive, err := Exponential(vals)
	if err != nil {
		t.Fatal(err)
	}
	if naive.Lambda <= got.Lambda {
		t.Errorf("naive λ %g should exceed censoring-aware λ %g", naive.Lambda, got.Lambda)
	}
}

func TestExponentialCensoredMatchesUncensoredOnExactData(t *testing.T) {
	xs := []float64{100, 300, 800}
	a, err := Exponential(xs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExponentialCensored(Exact(xs))
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(a.Lambda, b.Lambda, 1e-12) {
		t.Errorf("censored path diverges on exact data: %g vs %g", a.Lambda, b.Lambda)
	}
}

func TestWeibullCensoredRecoversParameters(t *testing.T) {
	truth := dist.NewWeibull(0.43, 3409)
	raw := sample(truth, 40000, 33)
	// Censor at a modest horizon: heavy tails put much mass beyond it.
	obs := censorAt(raw, 20000)
	got, err := WeibullCensored(obs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got.Shape, truth.Shape, 0.06) {
		t.Errorf("censored shape = %g, want %g", got.Shape, truth.Shape)
	}
	if !almostEqual(got.Scale, truth.Scale, 0.08) {
		t.Errorf("censored scale = %g, want %g", got.Scale, truth.Scale)
	}
	// Naive fit underestimates the scale badly on the same data.
	vals := make([]float64, len(obs))
	for i, o := range obs {
		vals[i] = o.Value
	}
	naive, err := Weibull(vals)
	if err != nil {
		t.Fatal(err)
	}
	if naive.Scale >= got.Scale {
		t.Errorf("naive scale %g should be below censoring-aware %g", naive.Scale, got.Scale)
	}
}

func TestWeibullCensoredMatchesUncensoredOnExactData(t *testing.T) {
	truth := dist.NewWeibull(0.8, 1000)
	raw := sample(truth, 2000, 35)
	a, err := Weibull(raw)
	if err != nil {
		t.Fatal(err)
	}
	b, err := WeibullCensored(Exact(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(a.Shape, b.Shape, 1e-9) || !almostEqual(a.Scale, b.Scale, 1e-9) {
		t.Errorf("censored path diverges on exact data: %v vs %v", a, b)
	}
}

func TestHyperexpCensoredMonotoneLikelihood(t *testing.T) {
	truth := dist.NewHyperexponential([]float64{0.7, 0.3}, []float64{0.01, 0.0005})
	raw := sample(truth, 2000, 37)
	obs := censorAt(raw, 2500)
	prev := math.Inf(-1)
	for iters := 1; iters <= 50; iters += 7 {
		r, err := HyperexpCensored(obs, 2, EMOptions{MaxIter: iters, Tol: 1e-300})
		if err != nil {
			t.Fatal(err)
		}
		if r.LogLik < prev-1e-6 {
			t.Errorf("censored EM log-likelihood decreased at %d iters", iters)
		}
		prev = r.LogLik
	}
}

func TestHyperexpCensoredRecoversSlowPhase(t *testing.T) {
	truth := dist.NewHyperexponential([]float64{0.6, 0.4}, []float64{0.02, 0.0002})
	raw := sample(truth, 60000, 39)
	obs := censorAt(raw, 6000) // censors most slow-phase lifetimes
	r, err := HyperexpCensored(obs, 2, EMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h := r.Dist
	slow := 0
	if h.Lambda[1] < h.Lambda[0] {
		slow = 1
	}
	// Censoring-aware EM should still see the slow phase's scale
	// (mean ≈ 5000 s), where the naive EM collapses it toward the
	// censoring horizon.
	if mean := 1 / h.Lambda[slow]; mean < 3200 {
		t.Errorf("censored EM slow-phase mean = %g, want ≳ 3200", mean)
	}
	vals := make([]float64, len(obs))
	for i, o := range obs {
		vals[i] = o.Value
	}
	naive, err := Hyperexp(vals, 2, EMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	nslow := 0
	if naive.Dist.Lambda[1] < naive.Dist.Lambda[0] {
		nslow = 1
	}
	if 1/naive.Dist.Lambda[nslow] >= 1/h.Lambda[slow] {
		t.Errorf("naive slow mean %g should underestimate censoring-aware %g",
			1/naive.Dist.Lambda[nslow], 1/h.Lambda[slow])
	}
}

func TestFitCensoredDispatch(t *testing.T) {
	truth := dist.NewWeibull(0.6, 2000)
	obs := censorAt(sample(truth, 500, 41), 4000)
	for _, m := range Models {
		d, err := FitCensored(m, obs)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if d.Mean() <= 0 {
			t.Errorf("%v: bad mean", m)
		}
	}
	if _, err := FitCensored(Model(77), obs); err == nil {
		t.Error("unknown model should error")
	}
}

func TestCensoredErrors(t *testing.T) {
	if _, err := ExponentialCensored(nil); err == nil {
		t.Error("empty should error")
	}
	allCens := []Observation{{Value: 5, Censored: true}}
	if _, err := ExponentialCensored(allCens); err == nil {
		t.Error("all-censored should error")
	}
	if _, err := WeibullCensored(allCens); err == nil {
		t.Error("all-censored should error")
	}
	if _, err := HyperexpCensored(allCens, 2, EMOptions{}); err == nil {
		t.Error("all-censored should error")
	}
	if _, err := HyperexpCensored(Exact([]float64{1, 2}), 0, EMOptions{}); err == nil {
		t.Error("k=0 should error")
	}
	// Degenerate identical sample.
	w, err := WeibullCensored([]Observation{{Value: 9}, {Value: 9}, {Value: 9, Censored: true}})
	if err != nil {
		t.Fatal(err)
	}
	if w.Scale != 9 {
		t.Errorf("degenerate censored fit = %v", w)
	}
}

func TestCensoredLogLikelihood(t *testing.T) {
	d := dist.NewExponential(0.001)
	obs := []Observation{{Value: 1000}, {Value: 2000, Censored: true}}
	got := CensoredLogLikelihood(d, obs)
	want := math.Log(d.PDF(1000)) + math.Log(d.Survival(2000))
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("censored ll = %g, want %g", got, want)
	}
	if !math.IsInf(CensoredLogLikelihood(d, nil), -1) {
		t.Error("empty data ll should be -Inf")
	}
	// The censoring-aware fit maximizes this likelihood better than a
	// mis-fit.
	truth := dist.NewExponential(1.0 / 800)
	raw := sample(truth, 5000, 43)
	cobs := censorAt(raw, 800)
	fitted, err := ExponentialCensored(cobs)
	if err != nil {
		t.Fatal(err)
	}
	if CensoredLogLikelihood(fitted, cobs) < CensoredLogLikelihood(dist.NewExponential(1.0/300), cobs) {
		t.Error("fitted model should beat an arbitrary one in censored likelihood")
	}
}
