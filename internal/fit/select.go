package fit

import (
	"fmt"

	"github.com/cycleharvest/ckptsched/internal/dist"
)

// Model identifies one of the four availability models the paper
// compares.
type Model int

// The four model families evaluated throughout the paper's tables.
const (
	ModelExponential Model = iota
	ModelWeibull
	ModelHyperexp2
	ModelHyperexp3
)

// Models lists all four in the paper's column order.
var Models = []Model{ModelExponential, ModelWeibull, ModelHyperexp2, ModelHyperexp3}

// String returns the short name used in tables ("Exp.", "Weib.", ...).
func (m Model) String() string {
	switch m {
	case ModelExponential:
		return "exponential"
	case ModelWeibull:
		return "weibull"
	case ModelHyperexp2:
		return "hyperexp2"
	case ModelHyperexp3:
		return "hyperexp3"
	default:
		return fmt.Sprintf("model(%d)", int(m))
	}
}

// Letter returns the single-symbol tag the paper uses in significance
// annotations: "e", "w", "2", "3".
func (m Model) Letter() string {
	switch m {
	case ModelExponential:
		return "e"
	case ModelWeibull:
		return "w"
	case ModelHyperexp2:
		return "2"
	case ModelHyperexp3:
		return "3"
	default:
		return "?"
	}
}

// ParseModel converts a model name (as printed by String, plus a few
// aliases) back to a Model.
func ParseModel(s string) (Model, error) {
	switch s {
	case "exponential", "exp", "e":
		return ModelExponential, nil
	case "weibull", "weib", "w":
		return ModelWeibull, nil
	case "hyperexp2", "hyper2", "2":
		return ModelHyperexp2, nil
	case "hyperexp3", "hyper3", "3":
		return ModelHyperexp3, nil
	}
	return 0, fmt.Errorf("fit: unknown model %q", s)
}

// Fit estimates the given model family from data.
func Fit(m Model, data []float64) (dist.Distribution, error) {
	switch m {
	case ModelExponential:
		return Exponential(data)
	case ModelWeibull:
		return Weibull(data)
	case ModelHyperexp2:
		r, err := Hyperexp(data, 2, EMOptions{})
		return r.Dist, err
	case ModelHyperexp3:
		r, err := Hyperexp(data, 3, EMOptions{})
		return r.Dist, err
	}
	return nil, fmt.Errorf("fit: unknown model %v", m)
}

// Fitted pairs a model family with its estimated distribution and
// goodness-of-fit summaries on the training data.
type Fitted struct {
	Model  Model
	Dist   dist.Distribution
	LogLik float64
	AIC    float64
	BIC    float64
	KS     float64
}

// All fits all four families to data and reports goodness of fit for
// each. Families that fail to fit are omitted; an error is returned
// only if every family fails.
func All(data []float64) ([]Fitted, error) {
	var out []Fitted
	var firstErr error
	for _, m := range Models {
		d, err := Fit(m, data)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		ll := LogLikelihood(d, data)
		k := NumParams(d)
		out = append(out, Fitted{
			Model:  m,
			Dist:   d,
			LogLik: ll,
			AIC:    AIC(ll, k),
			BIC:    BIC(ll, k, len(data)),
			KS:     KS(d, data),
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("fit: all families failed: %w", firstErr)
	}
	return out, nil
}

// BestByAIC returns the fit with the smallest AIC.
func BestByAIC(fits []Fitted) (Fitted, error) {
	if len(fits) == 0 {
		return Fitted{}, ErrNoData
	}
	best := fits[0]
	for _, f := range fits[1:] {
		if f.AIC < best.AIC {
			best = f
		}
	}
	return best, nil
}

// BestByKS returns the fit with the smallest Kolmogorov-Smirnov
// distance.
func BestByKS(fits []Fitted) (Fitted, error) {
	if len(fits) == 0 {
		return Fitted{}, ErrNoData
	}
	best := fits[0]
	for _, f := range fits[1:] {
		if f.KS < best.KS {
			best = f
		}
	}
	return best, nil
}
