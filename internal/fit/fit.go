// Package fit estimates the parameters of availability distributions
// from observed duration samples (§3.4 of the paper): closed-form
// maximum likelihood for the exponential, profile-likelihood maximum
// likelihood for the Weibull, and expectation-maximization for k-phase
// hyperexponentials.
//
// The package stands in for the Matlab `mle` routine and the EMPht
// phase-type fitting package used by the original study: for the
// hyperexponential subclass of phase-type distributions, the EMPht EM
// recursion reduces to the classical exponential-mixture EM
// implemented here.
package fit

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/cycleharvest/ckptsched/internal/dist"
	"github.com/cycleharvest/ckptsched/internal/mathx"
)

// DurationFloor is the smallest duration (seconds) the estimators
// accept. Occupancy monitors can record zero-length occupancies (a job
// evicted before its first wakeup); zero breaks the Weibull and
// hyperexponential likelihoods, so observations are clamped up to this
// floor. One second is far below any duration that affects a
// checkpoint schedule.
const DurationFloor = 1.0

// ErrNoData is returned when an estimator is given no observations.
var ErrNoData = errors.New("fit: no observations")

// clean copies data, clamping values below DurationFloor and dropping
// non-finite entries. It returns an error if nothing usable remains.
func clean(data []float64) ([]float64, error) {
	out := make([]float64, 0, len(data))
	for _, x := range data {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		if x < DurationFloor {
			x = DurationFloor
		}
		out = append(out, x)
	}
	if len(out) == 0 {
		return nil, ErrNoData
	}
	return out, nil
}

// Exponential fits an exponential distribution by maximum likelihood:
// λ̂ = 1 / sample mean.
func Exponential(data []float64) (dist.Exponential, error) {
	xs, err := clean(data)
	if err != nil {
		return dist.Exponential{}, err
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	return dist.NewExponential(1 / mean), nil
}

// Weibull fits a two-parameter Weibull distribution by maximum
// likelihood. The shape α̂ solves the profile-likelihood equation
//
//	Σ xᵢ^α ln xᵢ / Σ xᵢ^α − 1/α − (1/n) Σ ln xᵢ = 0,
//
// found by bracket expansion and bisection; the scale then follows in
// closed form, β̂ = (Σ xᵢ^α̂ / n)^(1/α̂).
func Weibull(data []float64) (dist.Weibull, error) {
	xs, err := clean(data)
	if err != nil {
		return dist.Weibull{}, err
	}
	n := float64(len(xs))
	meanLog := 0.0
	for _, x := range xs {
		meanLog += math.Log(x)
	}
	meanLog /= n

	allEqual := true
	for _, x := range xs {
		if x != xs[0] {
			allEqual = false
			break
		}
	}
	if allEqual {
		// Degenerate sample: the likelihood is unbounded in α. Return
		// a sharply peaked but finite fit.
		return dist.NewWeibull(50, xs[0]), nil
	}

	// Profile score in α. Computed with the max-rescaling trick so that
	// x^α does not overflow for large α.
	score := func(alpha float64) float64 {
		xmax := xs[0]
		for _, x := range xs {
			if x > xmax {
				xmax = x
			}
		}
		var sw, swl float64 // Σ (x/xmax)^α, Σ (x/xmax)^α ln x
		for _, x := range xs {
			w := math.Pow(x/xmax, alpha)
			sw += w
			swl += w * math.Log(x)
		}
		return swl/sw - 1/alpha - meanLog
	}

	lo, hi := 1e-3, 1.0
	lo2, hi2, err := mathx.ExpandBracket(score, lo, hi, 40)
	if err != nil {
		return dist.Weibull{}, fmt.Errorf("fit: weibull shape bracket: %w", err)
	}
	alpha, err := mathx.Bisect(score, lo2, hi2, 1e-10)
	if err != nil {
		return dist.Weibull{}, fmt.Errorf("fit: weibull shape solve: %w", err)
	}

	sum := 0.0
	for _, x := range xs {
		sum += math.Pow(x, alpha)
	}
	beta := math.Pow(sum/n, 1/alpha)
	return dist.NewWeibull(alpha, beta), nil
}

// LogNormal fits a lognormal distribution by maximum likelihood:
// µ̂ and σ̂ are the mean and (MLE, /n) standard deviation of the log
// durations. The lognormal is not one of the paper's four tabulated
// families but is a standard comparator in the availability-modeling
// literature and is exposed for model-selection studies.
func LogNormal(data []float64) (dist.LogNormal, error) {
	xs, err := clean(data)
	if err != nil {
		return dist.LogNormal{}, err
	}
	n := float64(len(xs))
	mu := 0.0
	for _, x := range xs {
		mu += math.Log(x)
	}
	mu /= n
	ss := 0.0
	for _, x := range xs {
		d := math.Log(x) - mu
		ss += d * d
	}
	sigma := math.Sqrt(ss / n)
	if sigma <= 0 {
		// Degenerate sample (all values equal): a sharply peaked fit.
		sigma = 1e-6
	}
	return dist.NewLogNormal(mu, sigma), nil
}

// LogLikelihood returns the log-likelihood of data under d. Values are
// cleaned the same way the estimators clean them, so likelihoods of
// fits to the same data are comparable.
func LogLikelihood(d dist.Distribution, data []float64) float64 {
	xs, err := clean(data)
	if err != nil {
		return math.Inf(-1)
	}
	ll := 0.0
	for _, x := range xs {
		p := d.PDF(x)
		if p <= 0 {
			return math.Inf(-1)
		}
		ll += math.Log(p)
	}
	return ll
}

// AIC returns the Akaike information criterion 2k − 2·lnL for a model
// with k free parameters.
func AIC(logLik float64, params int) float64 {
	return 2*float64(params) - 2*logLik
}

// BIC returns the Bayesian information criterion k·ln(n) − 2·lnL.
func BIC(logLik float64, params, n int) float64 {
	return float64(params)*math.Log(float64(n)) - 2*logLik
}

// KS returns the Kolmogorov-Smirnov distance between the empirical
// distribution of data and model.
func KS(model dist.Distribution, data []float64) float64 {
	xs, err := clean(data)
	if err != nil {
		return math.NaN()
	}
	return dist.NewEmpirical(xs).KSDistance(model)
}

// NumParams returns the number of free parameters of the supported
// families (used by AIC/BIC): 1 for exponential, 2 for Weibull, 2k−1
// for a k-phase hyperexponential. Conditioned distributions report
// their base's count. Unknown families report 0.
func NumParams(d dist.Distribution) int {
	switch v := d.(type) {
	case dist.Exponential:
		return 1
	case dist.Weibull:
		return 2
	case dist.LogNormal:
		return 2
	case dist.Hyperexponential:
		return 2*v.Phases() - 1
	case dist.Conditional:
		return NumParams(v.Base)
	default:
		return 0
	}
}

// quantileGroups splits sorted data into k contiguous groups of nearly
// equal size, returning the mean of each group. It seeds the EM rates.
func quantileGroups(sorted []float64, k int) []float64 {
	means := make([]float64, k)
	n := len(sorted)
	for i := range k {
		lo := i * n / k
		hi := (i + 1) * n / k
		if hi <= lo {
			hi = lo + 1
		}
		if hi > n {
			hi = n
		}
		sum := 0.0
		for _, x := range sorted[lo:hi] {
			sum += x
		}
		means[i] = sum / float64(hi-lo)
	}
	return means
}

// EMOptions tunes the hyperexponential EM fit.
type EMOptions struct {
	// MaxIter bounds EM iterations (default 500).
	MaxIter int
	// Tol stops EM when the log-likelihood improves by less than Tol
	// (default 1e-9, relative to |logLik|).
	Tol float64
}

// EMResult reports the outcome of a hyperexponential EM fit.
type EMResult struct {
	Dist    dist.Hyperexponential
	LogLik  float64
	Iters   int
	Converg bool
}

// Hyperexp fits a k-phase hyperexponential to data by
// expectation-maximization, seeded deterministically from the sample
// quantile structure so that fits are reproducible.
//
// E step: responsibilities γᵢⱼ = pᵢλᵢe^(-λᵢxⱼ) / Σₘ pₘλₘe^(-λₘxⱼ).
// M step: pᵢ = mean over j of γᵢⱼ; λᵢ = Σⱼγᵢⱼ / Σⱼγᵢⱼxⱼ.
//
// Every iteration provably does not decrease the likelihood; the test
// suite checks this invariant directly.
func Hyperexp(data []float64, k int, opts EMOptions) (EMResult, error) {
	if k < 1 {
		return EMResult{}, fmt.Errorf("fit: hyperexponential needs k >= 1, got %d", k)
	}
	xs, err := clean(data)
	if err != nil {
		return EMResult{}, err
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 500
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-9
	}
	n := len(xs)
	if n < k {
		// Not enough observations to distinguish phases; collapse to
		// as many phases as points.
		k = n
	}

	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)

	// Deterministic initialization: rates from quantile-group means,
	// slightly separated when groups tie; uniform weights.
	p := make([]float64, k)
	lam := make([]float64, k)
	groupMeans := quantileGroups(sorted, k)
	for i := range k {
		p[i] = 1 / float64(k)
		m := groupMeans[i]
		if m <= 0 {
			m = DurationFloor
		}
		lam[i] = 1 / m
	}
	for i := 1; i < k; i++ {
		if lam[i] >= lam[i-1] {
			lam[i] = lam[i-1] * 0.5 // enforce distinct, decreasing rates
		}
	}

	const (
		lamMin = 1e-12
		lamMax = 1e3 // rates above 1/ms are meaningless for seconds data
		pMin   = 1e-12
	)

	// Responsibility matrix, one contiguous row-major k×n slice:
	// gamma[i*n+j] is phase i's responsibility for observation j. The
	// M step walks each row sequentially, so one backing array keeps
	// the EM inner loops on consecutive cache lines; the loop order is
	// unchanged from the [][]float64 version, so fits are bitwise
	// identical.
	gamma := make([]float64, k*n)
	prevLL := math.Inf(-1)
	iters := 0
	converged := false
	for iter := range opts.MaxIter {
		iters = iter + 1
		// E step + log-likelihood in one pass.
		ll := 0.0
		for j, x := range xs {
			den := 0.0
			for i := range k {
				g := p[i] * lam[i] * math.Exp(-lam[i]*x)
				gamma[i*n+j] = g
				den += g
			}
			if den <= 0 {
				// All phases assign zero density (extreme outlier);
				// assign it to the slowest phase.
				slow := 0
				for i := 1; i < k; i++ {
					if lam[i] < lam[slow] {
						slow = i
					}
				}
				for i := range k {
					gamma[i*n+j] = 0
				}
				gamma[slow*n+j] = 1
				ll += math.Log(pMin)
				continue
			}
			for i := range k {
				gamma[i*n+j] /= den
			}
			ll += math.Log(den)
		}
		// M step.
		for i := range k {
			var sg, sgx float64
			row := gamma[i*n : (i+1)*n]
			for j, x := range xs {
				sg += row[j]
				sgx += row[j] * x
			}
			p[i] = math.Max(sg/float64(n), pMin)
			if sgx <= 0 {
				lam[i] = lamMax
			} else {
				lam[i] = math.Min(math.Max(sg/sgx, lamMin), lamMax)
			}
		}
		if ll-prevLL < opts.Tol*math.Max(1, math.Abs(ll)) && iter > 0 {
			prevLL = ll
			converged = true
			break
		}
		prevLL = ll
	}

	h := dist.NewHyperexponential(p, lam)
	metrics.emFits.Inc()
	metrics.emIters.Add(uint64(iters))
	return EMResult{Dist: h, LogLik: prevLL, Iters: iters, Converg: converged}, nil
}
