// Package core is the paper's primary contribution assembled into a
// public API: it fits an availability model to a resource's observed
// occupancy history, parameterizes the three-state Markov model for an
// application placed on that resource, and produces optimal checkpoint
// intervals and aperiodic schedules.
//
// The package also provides Routine, a direct transliteration of the
// paper's "small, portable routine which implements the evaluation and
// optimization of Γ/T to find T_opt, taking as input the distribution
// model chosen, the distribution parameters, the value of T_elapsed …
// and values for C and R" (§3.5).
package core

import (
	"errors"
	"fmt"

	"github.com/cycleharvest/ckptsched/internal/dist"
	"github.com/cycleharvest/ckptsched/internal/fit"
	"github.com/cycleharvest/ckptsched/internal/markov"
)

// Scheduler computes checkpoint schedules for one resource whose
// availability follows a fitted (or supplied) distribution.
type Scheduler struct {
	// Dist is the availability distribution in effect.
	Dist dist.Distribution
	// Model records which family Dist belongs to when the scheduler
	// was built by fitting; it is ModelExponential-valued garbage for
	// NewScheduler-constructed instances, so consult Fitted.
	Model fit.Model
	// Fitted reports whether Dist came from Fit (true) or was supplied
	// directly (false).
	Fitted bool
	// Optimize tunes every T_opt search made through this scheduler.
	Optimize markov.OptimizeOptions
}

// NewScheduler wraps an explicit availability distribution.
func NewScheduler(d dist.Distribution) (*Scheduler, error) {
	if d == nil {
		return nil, errors.New("core: nil distribution")
	}
	return &Scheduler{Dist: d}, nil
}

// FitScheduler fits the given model family to a resource's
// availability history (durations in seconds) and returns a scheduler
// using the fitted distribution. This is the path the paper's system
// takes when an application is assigned to a resource.
func FitScheduler(m fit.Model, history []float64) (*Scheduler, error) {
	d, err := fit.Fit(m, history)
	if err != nil {
		return nil, fmt.Errorf("core: fitting %v: %w", m, err)
	}
	return &Scheduler{Dist: d, Model: m, Fitted: true}, nil
}

// model builds the Markov model for the given overhead costs.
func (s *Scheduler) model(costs markov.Costs) markov.Model {
	return markov.Model{Avail: s.Dist, Costs: costs}
}

// Topt returns the optimal work interval for a resource that has been
// available for telapsed seconds, under the given overhead costs.
func (s *Scheduler) Topt(telapsed float64, costs markov.Costs) (float64, error) {
	T, _, err := s.model(costs).Topt(telapsed, s.Optimize)
	return T, err
}

// ExpectedEfficiency returns the model-predicted fraction of time
// spent on useful work when checkpointing at the optimal interval,
// 1/(Γ/T) evaluated at T_opt (§5.1).
func (s *Scheduler) ExpectedEfficiency(telapsed float64, costs markov.Costs) (float64, error) {
	_, ratio, err := s.model(costs).Topt(telapsed, s.Optimize)
	if err != nil {
		return 0, err
	}
	return 1 / ratio, nil
}

// ExpectedNetworkRate returns the model-predicted long-run network
// load, in megabytes per second of wall-clock time, when checkpointing
// optimally with images of sizeMB megabytes: the analytic counterpart
// of the paper's Figure 4/Table 3 measurements.
func (s *Scheduler) ExpectedNetworkRate(telapsed float64, costs markov.Costs, sizeMB float64) (float64, error) {
	m := s.model(costs)
	T, _, err := m.Topt(telapsed, s.Optimize)
	if err != nil {
		return 0, err
	}
	return m.ExpectedBandwidthRate(T, telapsed) * sizeMB, nil
}

// Schedule computes the aperiodic schedule of T_opt values from the
// resource's current age onward. For memoryless models the schedule
// contains a single interval that repeats.
func (s *Scheduler) Schedule(telapsed float64, costs markov.Costs, opts markov.ScheduleOptions) (*markov.Schedule, error) {
	opts.Optimize = s.Optimize
	return s.model(costs).BuildSchedule(telapsed, opts)
}

// DistFromParams reconstructs a distribution from a family name and a
// flat parameter vector, the wire format the paper's checkpoint
// manager sends to test processes:
//
//	exponential: [λ]
//	weibull:     [shape, scale]
//	hyperexpK:   [p₁ … p_K, λ₁ … λ_K]
func DistFromParams(model fit.Model, params []float64) (dist.Distribution, error) {
	switch model {
	case fit.ModelExponential:
		if len(params) != 1 {
			return nil, fmt.Errorf("core: exponential needs 1 parameter, got %d", len(params))
		}
		return safeDist(func() dist.Distribution { return dist.NewExponential(params[0]) })
	case fit.ModelWeibull:
		if len(params) != 2 {
			return nil, fmt.Errorf("core: weibull needs 2 parameters, got %d", len(params))
		}
		return safeDist(func() dist.Distribution { return dist.NewWeibull(params[0], params[1]) })
	case fit.ModelHyperexp2, fit.ModelHyperexp3:
		k := 2
		if model == fit.ModelHyperexp3 {
			k = 3
		}
		if len(params) != 2*k {
			return nil, fmt.Errorf("core: hyperexp%d needs %d parameters, got %d", k, 2*k, len(params))
		}
		return safeDist(func() dist.Distribution {
			return dist.NewHyperexponential(params[:k], params[k:])
		})
	}
	return nil, fmt.Errorf("core: unknown model %v", model)
}

// ParamsOf flattens a distribution into the wire parameter vector
// DistFromParams accepts.
func ParamsOf(d dist.Distribution) (fit.Model, []float64, error) {
	switch v := d.(type) {
	case dist.Exponential:
		return fit.ModelExponential, []float64{v.Lambda}, nil
	case dist.Weibull:
		return fit.ModelWeibull, []float64{v.Shape, v.Scale}, nil
	case dist.Hyperexponential:
		var m fit.Model
		switch v.Phases() {
		case 2:
			m = fit.ModelHyperexp2
		case 3:
			m = fit.ModelHyperexp3
		default:
			return 0, nil, fmt.Errorf("core: unsupported hyperexponential phase count %d", v.Phases())
		}
		params := append(append([]float64{}, v.P...), v.Lambda...)
		return m, params, nil
	}
	return 0, nil, fmt.Errorf("core: unsupported distribution %T", d)
}

// safeDist converts constructor panics into errors.
func safeDist(f func() dist.Distribution) (d dist.Distribution, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: %v", r)
		}
	}()
	return f(), nil
}

// Routine is the paper's §3.5 portable routine: evaluate and optimize
// Γ/T for the chosen model and parameters at T_elapsed, with
// checkpoint cost c and recovery cost r (latency defaults to c, the
// sequential-checkpointing convention). It returns T_opt and the
// expected efficiency at T_opt.
//
// For exponential models T_elapsed is ignored, exactly as the paper
// notes (memorylessness).
func Routine(model fit.Model, params []float64, telapsed, c, r float64) (topt, efficiency float64, err error) {
	d, err := DistFromParams(model, params)
	if err != nil {
		return 0, 0, err
	}
	costs, err := markov.NewCosts(c, r, -1)
	if err != nil {
		return 0, 0, err
	}
	m := markov.Model{Avail: d, Costs: costs}
	T, ratio, err := m.Topt(telapsed, markov.OptimizeOptions{})
	if err != nil {
		return 0, 0, err
	}
	return T, 1 / ratio, nil
}
