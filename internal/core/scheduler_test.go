package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/cycleharvest/ckptsched/internal/dist"
	"github.com/cycleharvest/ckptsched/internal/fit"
	"github.com/cycleharvest/ckptsched/internal/markov"
)

func costs(t *testing.T, c float64) markov.Costs {
	t.Helper()
	cs, err := markov.NewCosts(c, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

func history(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	w := dist.NewWeibull(0.43, 3409)
	out := make([]float64, n)
	for i := range out {
		out[i] = w.Rand(rng)
	}
	return out
}

func TestFitSchedulerAllModels(t *testing.T) {
	hist := history(25, 1)
	for _, m := range fit.Models {
		s, err := FitScheduler(m, hist)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !s.Fitted || s.Model != m {
			t.Errorf("%v: metadata wrong: %+v", m, s)
		}
		T, err := s.Topt(0, costs(t, 100))
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if T <= 0 {
			t.Errorf("%v: T_opt = %g", m, T)
		}
		eff, err := s.ExpectedEfficiency(0, costs(t, 100))
		if err != nil {
			t.Fatal(err)
		}
		if eff <= 0 || eff >= 1 {
			t.Errorf("%v: efficiency = %g", m, eff)
		}
	}
}

func TestExpectedNetworkRate(t *testing.T) {
	// The paper's headline through the public API: the exponential
	// model's optimal schedule moves more MB/s than the heavy-tailed
	// fits of the same history.
	hist := history(500, 2)
	rate := func(m fit.Model) float64 {
		s, err := FitScheduler(m, hist)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.ExpectedNetworkRate(500, costs(t, 500), 500)
		if err != nil {
			t.Fatal(err)
		}
		if r <= 0 {
			t.Fatalf("%v: rate %g", m, r)
		}
		return r
	}
	if exp, hyp := rate(fit.ModelExponential), rate(fit.ModelHyperexp2); exp <= hyp {
		t.Errorf("exponential rate %g not above hyperexp2 %g", exp, hyp)
	}
}

func TestFitSchedulerErrors(t *testing.T) {
	if _, err := FitScheduler(fit.ModelWeibull, nil); err == nil {
		t.Error("empty history should error")
	}
	if _, err := NewScheduler(nil); err == nil {
		t.Error("nil distribution should error")
	}
}

func TestSchedulerScheduleDelegation(t *testing.T) {
	s, err := NewScheduler(dist.NewWeibull(0.43, 3409))
	if err != nil {
		t.Fatal(err)
	}
	sched, err := s.Schedule(500, costs(t, 100), markov.ScheduleOptions{Horizon: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if sched.Len() == 0 || sched.Ages[0] != 500 {
		t.Errorf("schedule = %v", sched)
	}
}

func TestDistFromParamsRoundTrip(t *testing.T) {
	cases := []dist.Distribution{
		dist.NewExponential(0.001),
		dist.NewWeibull(0.43, 3409),
		dist.NewHyperexponential([]float64{0.6, 0.4}, []float64{0.01, 0.0001}),
		dist.NewHyperexponential([]float64{0.5, 0.3, 0.2}, []float64{0.1, 0.01, 0.001}),
	}
	for _, d := range cases {
		m, params, err := ParamsOf(d)
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		back, err := DistFromParams(m, params)
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		for _, x := range []float64{1, 100, 10000} {
			if math.Abs(back.CDF(x)-d.CDF(x)) > 1e-12 {
				t.Errorf("%s: CDF mismatch after round trip at %g", d.Name(), x)
			}
		}
	}
}

func TestDistFromParamsErrors(t *testing.T) {
	cases := []struct {
		name   string
		model  fit.Model
		params []float64
	}{
		{"exp wrong arity", fit.ModelExponential, []float64{1, 2}},
		{"exp bad rate", fit.ModelExponential, []float64{-1}},
		{"weibull wrong arity", fit.ModelWeibull, []float64{1}},
		{"weibull bad shape", fit.ModelWeibull, []float64{0, 5}},
		{"hyper2 wrong arity", fit.ModelHyperexp2, []float64{1, 2, 3}},
		{"hyper3 wrong arity", fit.ModelHyperexp3, []float64{1, 2, 3, 4}},
		{"hyper2 bad rate", fit.ModelHyperexp2, []float64{0.5, 0.5, 1, -1}},
		{"unknown model", fit.Model(99), []float64{1}},
	}
	for _, c := range cases {
		if _, err := DistFromParams(c.model, c.params); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestParamsOfUnsupported(t *testing.T) {
	if _, _, err := ParamsOf(dist.NewConditional(dist.NewExponential(1), 5)); err == nil {
		t.Error("conditional should be unsupported")
	}
	h4 := dist.NewHyperexponential([]float64{0.25, 0.25, 0.25, 0.25}, []float64{1, 2, 3, 4})
	if _, _, err := ParamsOf(h4); err == nil {
		t.Error("4-phase should be unsupported on the wire")
	}
}

func TestRoutineMatchesScheduler(t *testing.T) {
	params := []float64{0.43, 3409}
	T, eff, err := Routine(fit.ModelWeibull, params, 700, 110, 110)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(dist.NewWeibull(0.43, 3409))
	if err != nil {
		t.Fatal(err)
	}
	cs, err := markov.NewCosts(110, 110, -1)
	if err != nil {
		t.Fatal(err)
	}
	wantT, err := s.Topt(700, cs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(T-wantT)/wantT > 1e-6 {
		t.Errorf("Routine T_opt = %g, Scheduler = %g", T, wantT)
	}
	if eff <= 0 || eff >= 1 {
		t.Errorf("Routine efficiency = %g", eff)
	}
}

func TestRoutineMemorylessIgnoresTelapsed(t *testing.T) {
	params := []float64{1.0 / 9000}
	t1, _, err := Routine(fit.ModelExponential, params, 0, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	t2, _, err := Routine(fit.ModelExponential, params, 99999, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(t1-t2)/t1 > 1e-3 {
		t.Errorf("exponential T_opt depends on T_elapsed: %g vs %g", t1, t2)
	}
}

func TestRoutineErrors(t *testing.T) {
	if _, _, err := Routine(fit.ModelExponential, []float64{1, 2}, 0, 100, 100); err == nil {
		t.Error("bad params should error")
	}
	if _, _, err := Routine(fit.ModelExponential, []float64{1}, 0, -5, 100); err == nil {
		t.Error("negative cost should error")
	}
}
