package ckptnet

import (
	"fmt"
	"sync"
	"time"

	"github.com/cycleharvest/ckptsched/internal/fit"
)

// EventKind classifies a session-log event.
type EventKind int

// Session-log event kinds, in the order a healthy session produces
// them.
const (
	EvConnected EventKind = iota
	EvRecoveryDone
	EvRecoveryInterrupted
	EvTopt
	EvHeartbeat
	EvCheckpointDone
	EvCheckpointInterrupted
	EvDisconnected
	// EvRetry marks a session resumed after a transport failure (the
	// process reconnected with Hello.Resume; value = attempt number).
	EvRetry
	// EvTornFrame marks a frame that arrived mangled — corrupt
	// payload, lost stream alignment, or a checkpoint whose CRC did
	// not match (value = bytes read when detected).
	EvTornFrame
	// EvFallback marks an interval the process scheduled without a
	// fresh T_opt — it fell back to its last assigned schedule or the
	// conservative default (value = the interval used).
	EvFallback
	// EvDeltaCheckpointDone marks a committed content-addressed delta
	// checkpoint (value = payload bytes that crossed the wire, which is
	// legitimately 0 for a fully deduped image).
	EvDeltaCheckpointDone

	// evKindEnd is one past the last kind (keeps the serialization
	// table in logio.go complete).
	evKindEnd
)

func (k EventKind) String() string {
	switch k {
	case EvConnected:
		return "connected"
	case EvRecoveryDone:
		return "recovery-done"
	case EvRecoveryInterrupted:
		return "recovery-interrupted"
	case EvTopt:
		return "topt"
	case EvHeartbeat:
		return "heartbeat"
	case EvCheckpointDone:
		return "checkpoint-done"
	case EvCheckpointInterrupted:
		return "checkpoint-interrupted"
	case EvDisconnected:
		return "disconnected"
	case EvRetry:
		return "retry"
	case EvTornFrame:
		return "torn-frame"
	case EvFallback:
		return "fallback"
	case EvDeltaCheckpointDone:
		return "delta-checkpoint-done"
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// LogEvent is one manager-side observation about a session.
type LogEvent struct {
	// Seq is the 1-based monotonic sequence id within the session.
	// Events sharing a wall-clock timestamp stay unambiguous post hoc,
	// and trace spans carry the same id as their "seq" attribute so a
	// timeline row can be matched to its log entry exactly.
	Seq int64
	// Wall is the manager's wall-clock timestamp.
	Wall time.Time
	// Kind classifies the event.
	Kind EventKind
	// Value is kind-dependent: seconds for transfers and heartbeats,
	// the computed T_opt for EvTopt, bytes moved for interrupted
	// transfers.
	Value float64
}

// SessionLog is the manager's per-process record — the paper's "log
// file for each test process from which the overhead ratio can be
// calculated post facto".
type SessionLog struct {
	mu sync.Mutex

	// traceID is the manager-assigned trace pid for this session
	// (1-based creation order); 0 when the log was built outside a
	// manager (tests, ReadSessions).
	traceID uint64

	// JobID identifies the test process.
	JobID string
	// Model and Params echo the assignment.
	Model  fit.Model
	Params []float64
	// CheckpointBytes is the per-transfer image size.
	CheckpointBytes int64
	// Events is the chronological event list.
	Events []LogEvent
}

// Add appends an event stamped with the current wall time and returns
// its sequence id (1-based within this session).
func (l *SessionLog) Add(kind EventKind, value float64) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	seq := int64(len(l.Events)) + 1
	l.Events = append(l.Events, LogEvent{Seq: seq, Wall: time.Now(), Kind: kind, Value: value})
	return seq
}

// LastEvent returns the most recent event, or ok=false for an empty
// log. Use this (or Summarize) rather than reading Events directly
// while the session may still be live.
func (l *SessionLog) LastEvent() (ev LogEvent, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.Events) == 0 {
		return LogEvent{}, false
	}
	return l.Events[len(l.Events)-1], true
}

// Summary condenses a session log into the quantities the paper's
// tables aggregate.
type Summary struct {
	// Recoveries and Checkpoints count completed transfers;
	// Interrupted counts transfers cut off by eviction.
	Recoveries, Checkpoints, Interrupted int
	// Heartbeats counts heartbeat messages received.
	Heartbeats int
	// ToptReports counts per-interval schedule recomputations.
	ToptReports int
	// BytesMoved is the total network volume, including the partial
	// bytes of interrupted transfers.
	BytesMoved int64
	// LastHeartbeat is the final cumulative-runtime report, seconds.
	LastHeartbeat float64
	// Retries counts session resumptions after transport failures.
	Retries int
	// TornFrames counts mangled frames and CRC-rejected checkpoints.
	TornFrames int
	// Fallbacks counts intervals scheduled on a fallback T_opt.
	Fallbacks int
	// DeltaCheckpoints counts checkpoints committed as content-addressed
	// deltas (included in Checkpoints; their wire bytes — often a small
	// fraction of the image — are what BytesMoved accumulates for them).
	DeltaCheckpoints int
}

// Summarize computes the Summary of the log.
func (l *SessionLog) Summarize() Summary {
	l.mu.Lock()
	defer l.mu.Unlock()
	var s Summary
	for _, e := range l.Events {
		switch e.Kind {
		case EvRecoveryDone:
			// Value is the wire byte count for content-mode transfers;
			// legacy events carry 0 and bill the assigned image size.
			s.Recoveries++
			if e.Value > 0 {
				s.BytesMoved += int64(e.Value)
			} else {
				s.BytesMoved += l.CheckpointBytes
			}
		case EvCheckpointDone:
			s.Checkpoints++
			if e.Value > 0 {
				s.BytesMoved += int64(e.Value)
			} else {
				s.BytesMoved += l.CheckpointBytes
			}
		case EvDeltaCheckpointDone:
			// Delta wire bytes are exact, including a legitimate 0 for a
			// fully deduped image.
			s.Checkpoints++
			s.DeltaCheckpoints++
			s.BytesMoved += int64(e.Value)
		case EvRecoveryInterrupted, EvCheckpointInterrupted:
			s.Interrupted++
			s.BytesMoved += int64(e.Value)
		case EvHeartbeat:
			s.Heartbeats++
			if e.Value > s.LastHeartbeat {
				s.LastHeartbeat = e.Value
			}
		case EvTopt:
			s.ToptReports++
		case EvRetry:
			s.Retries++
		case EvTornFrame:
			s.TornFrames++
		case EvFallback:
			s.Fallbacks++
		}
	}
	return s
}
