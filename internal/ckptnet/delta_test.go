package ckptnet

import (
	"bytes"
	"context"
	"hash/crc32"
	"net"
	"testing"
	"time"

	"github.com/cycleharvest/ckptsched/internal/fit"
	"github.com/cycleharvest/ckptsched/internal/imagestore"
)

// TestZeroCRCCacheChurn churns 10k distinct sizes through ZeroCRC. The
// cache is a fixed direct-mapped table, so this is bounded by
// construction (zeroCRCSlots entries, no growth); the test pins that
// collisions and evictions never change answers.
func TestZeroCRCCacheChurn(t *testing.T) {
	if ZeroCRC(0) != 0 || ZeroCRC(-5) != 0 {
		t.Fatal("ZeroCRC of non-positive size must be 0")
	}
	for i := int64(1); i <= 10_000; i++ {
		size := i * 37
		got := ZeroCRC(size)
		if i%1000 == 0 {
			if want := crc32.ChecksumIEEE(make([]byte, size)); got != want {
				t.Fatalf("ZeroCRC(%d) = %08x, want %08x", size, got, want)
			}
		}
	}
	// Second pass over sizes that were certainly evicted and certainly
	// retained: both must still answer correctly.
	for _, size := range []int64{37, 500 * 37, 9_999 * 37, 10_000 * 37} {
		if got, want := ZeroCRC(size), crc32.ChecksumIEEE(make([]byte, size)); got != want {
			t.Fatalf("post-churn ZeroCRC(%d) = %08x, want %08x", size, got, want)
		}
	}
}

// TestDeltaCheckpointEndToEnd runs a delta-enabled process against the
// manager and checks that only the first checkpoint goes full, the
// rest travel as deltas, and the wire volume undercuts what full images
// would have cost.
func TestDeltaCheckpointEndToEnd(t *testing.T) {
	const imgBytes = 256 * 1024
	mgr, err := NewManager(StaticAssigner(fit.ModelExponential, []float64{1.0 / 9000}, imgBytes))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := mgr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	rep, err := RunProcess(context.Background(), ProcessConfig{
		Addr:         addr.String(),
		JobID:        "delta-1",
		TimeScale:    1e-4,
		MaxIntervals: 3,
		Delta:        &DeltaConfig{ChunkSize: 4096, DirtyFrac: 0.2, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rep.CheckpointSecs); got != 3 {
		t.Fatalf("checkpoints = %d, want 3", got)
	}
	if rep.DeltaCheckpoints != 2 {
		t.Fatalf("delta checkpoints = %d, want 2 (first goes full)", rep.DeltaCheckpoints)
	}
	// One full image plus two ~20% deltas must beat three full images.
	if rep.WireBytes <= 0 || rep.WireBytes >= 3*imgBytes {
		t.Fatalf("wire bytes = %d, want (0, %d)", rep.WireBytes, 3*imgBytes)
	}

	// Manager side agrees: store generation, summary counters, bytes.
	_, _, gen, _, ok := mgr.Store().Lookup("delta-1")
	if !ok || gen != 3 {
		t.Fatalf("store generation = %d (ok=%v), want 3", gen, ok)
	}
	sum := mgr.Sessions()[0].Summarize()
	if sum.Checkpoints != 3 || sum.DeltaCheckpoints != 2 {
		t.Fatalf("manager summary = %+v", sum)
	}
	wantMoved := int64(imgBytes) + rep.WireBytes // zero-stream recovery bills the image size
	if sum.BytesMoved != wantMoved {
		t.Fatalf("manager BytesMoved = %d, process wire accounting says %d", sum.BytesMoved, wantMoved)
	}
}

// TestDeltaNackOnTornAndStaleBase drives the wire protocol by hand: a
// delta payload corrupted in flight is Nacked on CRC, a stale-base
// delta is Nacked by the store, and — because the manager consumed
// exactly the announced bytes both times — the same connection then
// commits the clean delta.
func TestDeltaNackOnTornAndStaleBase(t *testing.T) {
	const imgBytes = 64 * 1024
	mgr, err := NewManager(StaticAssigner(fit.ModelExponential, []float64{1.0 / 9000}, imgBytes))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := mgr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, MsgHello, Hello{JobID: "manual-delta"}); err != nil {
		t.Fatal(err)
	}
	var assign Assign
	if ft, err := ReadFrame(conn, &assign); err != nil || ft != MsgAssign {
		t.Fatalf("assign: %v %v", ft, err)
	}
	var begin DataBegin
	if ft, err := ReadFrame(conn, &begin); err != nil || ft != MsgRecoveryBegin {
		t.Fatalf("recovery begin: %v %v", ft, err)
	}
	if _, err := ReadData(conn, begin.Bytes); err != nil {
		t.Fatal(err)
	}

	img := imagestore.NewImage(imgBytes, 4096, 11)
	send := func(db DataBegin, wire []byte) MsgType {
		t.Helper()
		if err := WriteFrame(conn, MsgCheckpointBegin, db); err != nil {
			t.Fatal(err)
		}
		if err := WriteRawData(conn, wire); err != nil {
			t.Fatal(err)
		}
		var ack CheckpointAck
		ft, err := ReadFrame(conn, &ack)
		if err != nil {
			t.Fatal(err)
		}
		if ft == MsgCheckpointAck {
			img.CommitBase(ack.Gen)
		}
		return ft
	}

	// Full content checkpoint commits generation 1.
	db, wire := encodeCheckpoint(img, &DeltaConfig{}, false)
	if ft := send(db, wire); ft != MsgCheckpointAck {
		t.Fatalf("full checkpoint: got frame %d, want ack", ft)
	}

	// Delta torn in flight: announce the clean CRC, ship a corrupted
	// payload. The manager must Nack without touching generation 1.
	img.MutateFraction(0.3)
	db, wire = encodeCheckpoint(img, &DeltaConfig{}, false)
	bad := append([]byte(nil), wire...)
	bad[len(bad)/2] ^= 0x5A
	if ft := send(db, bad); ft != MsgCheckpointNack {
		t.Fatalf("torn delta: got frame %d, want nack", ft)
	}

	// Stale base generation, clean payload: Nacked by the store.
	stale := db
	stale.BaseGen = 99
	if ft := send(stale, wire); ft != MsgCheckpointNack {
		t.Fatalf("stale-base delta: got frame %d, want nack", ft)
	}
	if g := mgr.Store().Generation("manual-delta"); g != 1 {
		t.Fatalf("rejected deltas advanced generation to %d", g)
	}

	// The stream is still frame-aligned: the clean delta commits.
	if ft := send(db, wire); ft != MsgCheckpointAck {
		t.Fatalf("clean delta after nacks: got frame %d, want ack", ft)
	}
	data, _, gen, _, ok := mgr.Store().Lookup("manual-delta")
	if !ok || gen != 2 || !bytes.Equal(data, img.Bytes()) {
		t.Fatalf("committed image wrong: gen=%d ok=%v equal=%v", gen, ok, bytes.Equal(data, img.Bytes()))
	}
	sum := mgr.Sessions()[0].Summarize()
	if sum.TornFrames != 2 || sum.DeltaCheckpoints != 1 {
		t.Fatalf("summary = %+v", sum)
	}
}

// TestDeltaChaosTornPayload is the chaos version: a fault injector
// corrupts one buffer mid-delta-transfer, the manager rejects it on
// CRC, and the process falls back to a full image on the same
// connection and completes the campaign with the right content.
func TestDeltaChaosTornPayload(t *testing.T) {
	const imgBytes = 256 * 1024
	mgr, err := NewManager(StaticAssigner(fit.ModelExponential, []float64{1.0 / 9000}, imgBytes))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := mgr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	// The process writes ~imgBytes during its first (full) checkpoint;
	// arming the one-shot corruption a chunk past that lands it inside
	// the first delta's payload stream.
	fi := NewFaultInjector(FaultConfig{Seed: 3, CorruptOnceAfter: imgBytes + 64*1024})
	rep, err := RunProcess(context.Background(), ProcessConfig{
		Addr:         addr.String(),
		JobID:        "delta-chaos",
		TimeScale:    1e-4,
		MaxIntervals: 3,
		Retry:        RetryPolicy{MaxAttempts: 4, BackoffBase: time.Millisecond},
		WrapConn:     fi.Wrap,
		Delta:        &DeltaConfig{ChunkSize: 4096, DirtyFrac: 0.9, Seed: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.CheckpointSecs) != 3 {
		t.Fatalf("checkpoints = %d, want 3", len(rep.CheckpointSecs))
	}
	if rep.CkptRetries == 0 && rep.Retries == 0 {
		t.Fatal("the injected corruption never surfaced as a retry")
	}
	if gen := mgr.Store().Generation("delta-chaos"); gen < 3 {
		t.Fatalf("store generation = %d, want >= 3", gen)
	}
	var torn int
	for _, s := range mgr.Sessions() {
		torn += s.Summarize().TornFrames
	}
	if torn == 0 {
		t.Fatal("manager never recorded the torn transfer")
	}
}

// TestDeltaResumeAdoptsCommittedImage resets the connection mid-run;
// the resumed session receives a content-mode recovery stream of the
// committed image, adopts it as its delta base, and keeps
// checkpointing incrementally instead of restarting with full images.
func TestDeltaResumeAdoptsCommittedImage(t *testing.T) {
	const imgBytes = 128 * 1024
	mgr, err := NewManager(StaticAssigner(fit.ModelExponential, []float64{1.0 / 9000}, imgBytes))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := mgr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	// First connection dies after roughly recovery + first checkpoint;
	// the retry (odd wrap index, reset unarmed) runs to completion.
	fi := NewFaultInjector(FaultConfig{Seed: 5, ResetAfterBytes: 2*imgBytes + 8*1024, ResetEvery: 2})
	rep, err := RunProcess(context.Background(), ProcessConfig{
		Addr:         addr.String(),
		JobID:        "delta-resume",
		TimeScale:    1e-4,
		MaxIntervals: 3,
		Retry:        RetryPolicy{MaxAttempts: 4, BackoffBase: time.Millisecond},
		WrapConn:     fi.Wrap,
		Delta:        &DeltaConfig{ChunkSize: 4096, DirtyFrac: 0.25, Seed: 13},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retries == 0 {
		t.Fatal("reset never forced a session retry")
	}
	if rep.DeltaCheckpoints == 0 {
		t.Fatal("resumed session never sent a delta — content recovery adoption failed")
	}
	if gen := mgr.Store().Generation("delta-resume"); gen < 3 {
		t.Fatalf("store generation = %d, want >= 3", gen)
	}
	var sum Summary
	for _, s := range mgr.Sessions() {
		ss := s.Summarize()
		sum.Checkpoints += ss.Checkpoints
		sum.DeltaCheckpoints += ss.DeltaCheckpoints
	}
	if sum.Checkpoints < 3 || sum.DeltaCheckpoints == 0 {
		t.Fatalf("manager summary = %+v", sum)
	}
}

// TestDeltaCompressedCheckpoint pins the compressed wire path: a
// compressible image ships fewer bytes than its raw payload and still
// commits bit-exact content.
func TestDeltaCompressedCheckpoint(t *testing.T) {
	const imgBytes = 64 * 1024
	mgr, err := NewManager(StaticAssigner(fit.ModelExponential, []float64{1.0 / 9000}, imgBytes))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := mgr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, MsgHello, Hello{JobID: "flate-1"}); err != nil {
		t.Fatal(err)
	}
	var assign Assign
	if _, err := ReadFrame(conn, &assign); err != nil {
		t.Fatal(err)
	}
	var begin DataBegin
	if _, err := ReadFrame(conn, &begin); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadData(conn, begin.Bytes); err != nil {
		t.Fatal(err)
	}

	// A compressible image: repeated text, not the incompressible
	// pseudo-random fill NewImage produces.
	img := imagestore.NewImage(imgBytes, 4096, 1)
	data := img.Bytes()
	for i := range data {
		data[i] = byte("checkpoint-image "[i%17])
	}
	db, wire := encodeCheckpoint(img, &DeltaConfig{Compress: true}, false)
	if db.Encoding != "flate" || db.Bytes >= int64(imgBytes) {
		t.Fatalf("compressible image did not compress: %+v", db)
	}
	if err := WriteFrame(conn, MsgCheckpointBegin, db); err != nil {
		t.Fatal(err)
	}
	if err := WriteRawData(conn, wire); err != nil {
		t.Fatal(err)
	}
	var ack CheckpointAck
	if ft, err := ReadFrame(conn, &ack); err != nil || ft != MsgCheckpointAck {
		t.Fatalf("compressed full checkpoint: %v %v", ft, err)
	}
	got, _, gen, _, ok := mgr.Store().Lookup("flate-1")
	if !ok || gen != 1 || !bytes.Equal(got, data) {
		t.Fatal("compressed image did not round-trip")
	}
}
