package ckptnet

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"math/rand"
	"net"
	"time"

	"github.com/cycleharvest/ckptsched/internal/core"
	"github.com/cycleharvest/ckptsched/internal/imagestore"
)

// RetryPolicy bounds how a process recovers from transport failures:
// a failed session (dropped connection, deadline miss, torn stream) is
// retried by reconnecting with exponential backoff plus jitter, up to
// MaxAttempts total attempts. The zero value disables retry — the
// first failure is returned to the caller, the pre-resilience
// behavior.
type RetryPolicy struct {
	// MaxAttempts is the total session attempts including the first
	// (≤1 = no retry).
	MaxAttempts int
	// BackoffBase is the delay before the first retry (default 200 ms);
	// each further retry doubles it up to BackoffMax (default 10 s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// JitterFrac randomizes each backoff by ±JitterFrac to avoid
	// synchronized reconnect storms (default 0.2).
	JitterFrac float64
	// Seed makes the jitter deterministic (0 derives one from JobID).
	Seed int64
}

func (p *RetryPolicy) setDefaults() {
	if p.BackoffBase <= 0 {
		p.BackoffBase = 200 * time.Millisecond
	}
	if p.BackoffMax <= 0 {
		p.BackoffMax = 10 * time.Second
	}
	if p.JitterFrac <= 0 {
		p.JitterFrac = 0.2
	}
}

// backoff returns the jittered delay before retry attempt (1-based).
func (p RetryPolicy) backoff(attempt int, rng *rand.Rand) time.Duration {
	d := p.BackoffBase
	for i := 1; i < attempt && d < p.BackoffMax; i++ {
		d *= 2
	}
	if d > p.BackoffMax {
		d = p.BackoffMax
	}
	jitter := 1 + p.JitterFrac*(2*rng.Float64()-1)
	return time.Duration(float64(d) * jitter)
}

// ProcessConfig configures one instrumented test process (§5.2).
type ProcessConfig struct {
	// Addr is the checkpoint manager's TCP address.
	Addr string
	// JobID identifies this process in the manager's logs.
	JobID string
	// TElapsed is the hosting resource's age (seconds since it became
	// available) at process start, if known.
	TElapsed float64
	// TimeScale compresses virtual time for testing: wall seconds =
	// virtual seconds × TimeScale. 1 runs in real time; 1e-3 runs a
	// 10-second heartbeat every 10 ms. Transfer durations measured on
	// the wire are divided by TimeScale to recover virtual seconds.
	TimeScale float64
	// MaxIntervals stops the process voluntarily after this many
	// committed checkpoints (0 = run until the context is canceled,
	// the live terminate-on-eviction behavior). Checkpoints committed
	// before a transport failure count across session retries.
	MaxIntervals int
	// FrameTimeout is the per-frame read deadline; 0 derives it from
	// the heartbeat cadence (4 heartbeat wall periods, floored at 2 s).
	FrameTimeout time.Duration
	// Retry controls session-level recovery from transport failures
	// (zero = fail fast).
	Retry RetryPolicy
	// MaxCkptRetries bounds in-connection checkpoint retransmissions
	// after the manager rejects a corrupt image (default 3).
	MaxCkptRetries int
	// WrapConn, when set, wraps the dialed connection — the hook the
	// FaultInjector uses to inject process-side faults.
	WrapConn func(net.Conn) net.Conn
	// Delta, when set, switches the process to content-addressed
	// checkpoints: it keeps a real image buffer and ships full content
	// on the first checkpoint, dirty-chunk deltas afterwards.
	Delta *DeltaConfig
}

// DeltaConfig tunes content-addressed delta checkpointing on the
// process side.
type DeltaConfig struct {
	// ChunkSize is the dedup granularity (≤ 0 = DefaultChunkSize).
	ChunkSize int
	// DirtyFrac is the fraction of chunks dirtied per work interval.
	// When DirtyRate is set it wins: the fraction becomes
	// 1−exp(−DirtyRate·T) for an interval of T virtual seconds.
	DirtyFrac float64
	// DirtyRate is the per-chunk touch rate in 1/virtual-second.
	DirtyRate float64
	// Compress DEFLATEs payloads when that shrinks them.
	Compress bool
	// Seed makes the synthetic image content deterministic (0 derives
	// one from JobID).
	Seed int64
}

// ProcessReport summarizes a test process run from the client side.
type ProcessReport struct {
	// Model and Params echo the manager's assignment.
	Assign Assign
	// RecoverySec is the measured initial transfer time (virtual
	// seconds).
	RecoverySec float64
	// CheckpointSecs are the measured checkpoint transfer times
	// (virtual seconds), one per committed checkpoint, accumulated
	// across session retries.
	CheckpointSecs []float64
	// Topts are the successive computed work intervals (virtual
	// seconds).
	Topts []float64
	// WorkSec is the total virtual time spent spinning (computing).
	WorkSec float64
	// Heartbeats counts heartbeat messages sent.
	Heartbeats int
	// Evicted reports whether the run ended by cancellation/disconnect
	// rather than by reaching MaxIntervals.
	Evicted bool
	// Retries counts session reconnections after transport failures.
	Retries int
	// CkptRetries counts in-connection checkpoint retransmissions
	// after the manager rejected a corrupt image.
	CkptRetries int
	// TornFrames counts corrupt transfers the process detected
	// (recovery CRC mismatches).
	TornFrames int
	// Fallbacks counts intervals scheduled without a fresh T_opt.
	Fallbacks int
	// WireBytes accumulates the checkpoint payload bytes actually sent
	// in content modes (full + delta); 0 for a legacy process.
	WireBytes int64
	// DeltaCheckpoints counts checkpoints committed as deltas.
	DeltaCheckpoints int
}

// procState is the durable cross-attempt state of a process: what must
// survive a transport failure for the session to resume correctly.
type procState struct {
	committed int           // checkpoints committed so far
	lastTopt  float64       // last assigned schedule (fallback on resume)
	age       float64       // resource age, virtual seconds
	measuredC float64       // last measured transfer cost, virtual seconds
	wallC     time.Duration // last transfer's wall duration (sizes ack deadlines)
	started   bool          // first recovery completed at least once
	img       *imagestore.Image
}

// RunProcess connects to the checkpoint manager and executes the
// instrumented recovery–compute–checkpoint cycle: time the recovery
// transfer, compute T_opt from the measured cost, spin while
// heart-beating every HeartbeatSec, checkpoint, re-measure, recompute,
// repeat. Cancel ctx to emulate an eviction (the connection drops
// mid-whatever, exactly as Condor's Vanilla universe kills a process).
//
// With a RetryPolicy configured, transport failures (dropped
// connections, deadline misses, torn streams) are retried with
// exponential backoff: the process reconnects, announces Resume, and
// continues from the manager's last good checkpoint image. Work
// committed before the failure is preserved.
func RunProcess(ctx context.Context, cfg ProcessConfig) (*ProcessReport, error) {
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1
	}
	if cfg.MaxCkptRetries <= 0 {
		cfg.MaxCkptRetries = 3
	}
	pol := cfg.Retry
	pol.setDefaults()
	seed := pol.Seed
	if seed == 0 {
		h := fnv.New64a()
		h.Write([]byte(cfg.JobID))
		seed = int64(h.Sum64())
	}
	rng := rand.New(rand.NewSource(seed))

	rep := &ProcessReport{}
	st := &procState{age: cfg.TElapsed}
	for attempt := 0; ; attempt++ {
		err := runSession(ctx, cfg, rep, st, attempt)
		if err == nil {
			return rep, nil
		}
		// Eviction (context cancellation) ends the run cleanly: the
		// paper's processes terminate on eviction rather than retry.
		// Only the context distinguishes an eviction from a transport
		// failure — a mid-transfer connection reset also surfaces as a
		// closed connection, and that one must be retried.
		if ctx.Err() != nil {
			rep.Evicted = true
			return rep, nil
		}
		if cfg.Retry.MaxAttempts <= 1 {
			return rep, err
		}
		if attempt+1 >= cfg.Retry.MaxAttempts {
			return rep, fmt.Errorf("ckptnet: session failed after %d attempts: %w", attempt+1, err)
		}
		rep.Retries++
		select {
		case <-ctx.Done():
			rep.Evicted = true
			return rep, nil
		case <-time.After(pol.backoff(attempt+1, rng)):
		}
	}
}

// errTornRecovery reports a recovery stream whose CRC did not match.
var errTornRecovery = errors.New("ckptnet: recovery image failed CRC check")

// runSession runs one connection's worth of the protocol, from dial to
// voluntary completion (nil) or transport failure (error). Cross-
// attempt state lives in st so a retry resumes where this attempt
// stopped.
func runSession(ctx context.Context, cfg ProcessConfig, rep *ProcessReport, st *procState, attempt int) error {
	conn, err := net.Dial("tcp", cfg.Addr)
	if err != nil {
		return fmt.Errorf("ckptnet: dial manager: %w", err)
	}
	if cfg.WrapConn != nil {
		conn = cfg.WrapConn(conn)
	}
	defer conn.Close()
	// Eviction: tear the connection down when the context ends so
	// blocked I/O aborts immediately.
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	// Until the assignment announces the heartbeat cadence, bound the
	// handshake with the configured (or a conservative) deadline.
	handshakeTO := cfg.FrameTimeout
	if handshakeTO <= 0 {
		handshakeTO = 10 * time.Second
	}
	rw := &deadlineRW{conn: conn, ReadTimeout: handshakeTO, WriteTimeout: handshakeTO}

	hello := Hello{
		JobID:     cfg.JobID,
		TElapsed:  cfg.TElapsed,
		TimeScale: cfg.TimeScale,
		Resume:    attempt > 0,
		Attempt:   attempt,
	}
	if err := WriteFrame(rw, MsgHello, hello); err != nil {
		return err
	}
	var assign Assign
	if t, err := ReadFrame(rw, &assign); err != nil || t != MsgAssign {
		if err == nil {
			err = ErrUnexpectedFrame
		}
		return err
	}
	rep.Assign = assign
	hb := assign.HeartbeatSec
	if hb <= 0 {
		hb = 10
	}
	frameTO := cfg.FrameTimeout
	if frameTO <= 0 {
		frameTO = frameTimeout(hb, cfg.TimeScale, 4, 2*time.Second, 10*time.Second)
	}
	rw.ReadTimeout, rw.WriteTimeout = frameTO, frameTO

	// Recovery, timed. On resume the manager streams its last good
	// image; either way the measured duration re-seeds the cost
	// estimate.
	var begin DataBegin
	if t, err := ReadFrame(rw, &begin); err != nil || t != MsgRecoveryBegin {
		if err == nil {
			err = ErrUnexpectedFrame
		}
		return err
	}
	start := time.Now()
	var (
		crc     uint32
		recData []byte
	)
	if begin.Mode == ModeLegacy {
		_, crc, err = ReadDataCRC(rw, begin.Bytes)
	} else {
		// Content recovery: the manager streams the committed image
		// itself; keep it so the delta state can re-adopt it.
		recData, _, crc, err = ReadDataBuf(rw, begin.Bytes)
	}
	if err != nil {
		return err
	}
	if begin.CRC32 != 0 && crc != begin.CRC32 {
		rep.TornFrames++
		return errTornRecovery
	}
	if cfg.Delta != nil {
		if st.img == nil {
			seed := cfg.Delta.Seed
			if seed == 0 {
				h := fnv.New64a()
				h.Write([]byte("img:" + cfg.JobID))
				seed = int64(h.Sum64())
			}
			st.img = imagestore.NewImage(assign.CheckpointBytes, cfg.Delta.ChunkSize, seed)
		}
		if recData != nil && begin.Gen > 0 {
			// Resume against the manager's committed generation: adopt
			// it as both content and delta base, so the first
			// post-recovery checkpoint can already go out as a delta.
			st.img.Adopt(recData, begin.Gen)
		}
	}
	st.wallC = time.Since(start)
	recSec := st.wallC.Seconds() / cfg.TimeScale
	if !st.started {
		rep.RecoverySec = recSec
		st.started = true
	}
	st.age += recSec
	st.measuredC = recSec

	for {
		// Resumed sessions fall back to the last assigned schedule for
		// their first interval: the manager just proved unreliable, so
		// don't trust a single fresh measurement over it. Otherwise
		// recompute; if the optimizer finds no feasible interval, fall
		// back to the last schedule, or to the conservative
		// cost-width interval (the exponential memoryless choice that
		// keeps at most one transfer's worth of work at risk).
		var topt, eff float64
		fallback := false
		if attempt > 0 && st.lastTopt > 0 {
			// Only the first interval of a resumed session reuses the
			// old schedule; later intervals recompute normally.
			topt = st.lastTopt
			fallback = true
		} else {
			topt, eff, err = core.Routine(assign.Model, assign.Params, st.age, st.measuredC, st.measuredC)
			if err != nil {
				fallback = true
				topt = st.lastTopt
				if topt <= 0 {
					topt = st.measuredC
				}
				if topt <= 0 {
					topt = hb
				}
			}
		}
		if fallback {
			rep.Fallbacks++
		}
		attempt = 0
		st.lastTopt = topt
		rep.Topts = append(rep.Topts, topt)
		if err := WriteFrame(rw, MsgTopt, ToptReport{
			Topt: topt, MeasuredC: st.measuredC, Age: st.age, Efficiency: eff, Fallback: fallback,
		}); err != nil {
			return err
		}

		// Emulate computation: spin for topt virtual seconds, sending
		// a heartbeat every hb virtual seconds.
		if err := rep.spin(ctx, rw, topt, hb, cfg.TimeScale); err != nil {
			return err
		}

		// Checkpoint, timed to first ack; a NACK (manager detected a
		// corrupt image or refused a delta) is retried over the same
		// connection — a rejected delta falls back to a full image, the
		// recovery path for a stale or lost base.
		if cfg.Delta != nil {
			// Dirty the synthetic image once per interval; retries
			// retransmit the same content.
			frac := cfg.Delta.DirtyFrac
			if cfg.Delta.DirtyRate > 0 {
				frac = imagestore.DirtyFraction(cfg.Delta.DirtyRate, topt)
			}
			st.img.MutateFraction(frac)
		}
		var ckptWall time.Duration
		forceFull := false
		for try := 0; ; try++ {
			ckptStart := time.Now()
			var begin DataBegin
			var wire []byte
			if cfg.Delta != nil {
				begin, wire = encodeCheckpoint(st.img, cfg.Delta, forceFull)
			} else {
				begin = DataBegin{Bytes: assign.CheckpointBytes, CRC32: ZeroCRC(assign.CheckpointBytes)}
			}
			if err := WriteFrame(rw, MsgCheckpointBegin, begin); err != nil {
				return err
			}
			if cfg.Delta != nil {
				err = WriteRawData(rw, wire)
			} else {
				err = WriteData(rw, begin.Bytes)
			}
			if err != nil {
				return err
			}
			// The ack arrives only after the manager drained the whole
			// stream; allow a deadline proportional to the last
			// transfer's wall duration.
			saved := rw.ReadTimeout
			if ackTO := 4*st.wallC + frameTO; ackTO > saved {
				rw.ReadTimeout = ackTO
			}
			var ack CheckpointAck
			t, err := ReadFrame(rw, &ack)
			rw.ReadTimeout = saved
			if err != nil {
				return err
			}
			if t == MsgCheckpointNack {
				rep.CkptRetries++
				if try+1 >= cfg.MaxCkptRetries {
					return fmt.Errorf("ckptnet: checkpoint rejected %d times: %w", try+1, ErrMalformedFrame)
				}
				if begin.Mode == ModeDelta {
					forceFull = true
				}
				continue
			}
			if t != MsgCheckpointAck {
				return ErrUnexpectedFrame
			}
			if cfg.Delta != nil {
				rep.WireBytes += begin.Bytes
				if begin.Mode == ModeDelta {
					rep.DeltaCheckpoints++
				}
				st.img.CommitBase(ack.Gen)
			}
			ckptWall = time.Since(ckptStart)
			break
		}
		st.wallC = ckptWall
		st.measuredC = ckptWall.Seconds() / cfg.TimeScale
		rep.CheckpointSecs = append(rep.CheckpointSecs, st.measuredC)
		st.committed++
		st.age += topt + st.measuredC

		if cfg.MaxIntervals > 0 && st.committed >= cfg.MaxIntervals {
			return nil
		}
	}
}

// encodeCheckpoint builds the DataBegin frame and wire payload for a
// content-mode checkpoint: a dirty-chunk delta when a committed base
// exists (and the caller isn't forcing a full resend after a Nack), the
// whole image otherwise. The CRC always checksums the bytes as they
// travel — post-compression — so the manager verifies the stream before
// decoding it.
func encodeCheckpoint(img *imagestore.Image, dc *DeltaConfig, forceFull bool) (DataBegin, []byte) {
	var begin DataBegin
	var payload []byte
	if img.HasBase() && !forceFull {
		d, p := img.EncodeDelta()
		payload = p
		begin = DataBegin{
			Mode:       ModeDelta,
			ChunkSize:  img.ChunkSize(),
			ImageBytes: img.Size(),
			BaseGen:    d.BaseGen,
			Dirty:      d.Dirty,
			Sums:       d.Sums,
		}
	} else {
		payload = img.Bytes()
		begin = DataBegin{Mode: ModeFull, ChunkSize: img.ChunkSize()}
	}
	begin.RawBytes = int64(len(payload))
	wire := payload
	if dc.Compress {
		if c, ok := imagestore.Compress(payload); ok {
			wire = c
			begin.Encoding = "flate"
		}
	}
	begin.Bytes = int64(len(wire))
	begin.CRC32 = crc32.ChecksumIEEE(wire)
	return begin, wire
}

// spin emulates computation and heartbeats for topt virtual seconds.
func (rep *ProcessReport) spin(ctx context.Context, w *deadlineRW, topt, hb, scale float64) error {
	remaining := topt
	for remaining > 0 {
		step := hb
		if step > remaining {
			step = remaining
		}
		wall := time.Duration(step * scale * float64(time.Second))
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(wall):
		}
		remaining -= step
		rep.WorkSec += step
		if err := WriteFrame(w, MsgHeartbeat, Heartbeat{Elapsed: rep.WorkSec}); err != nil {
			return err
		}
		rep.Heartbeats++
	}
	return nil
}
