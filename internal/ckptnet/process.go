package ckptnet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"github.com/cycleharvest/ckptsched/internal/core"
)

// ProcessConfig configures one instrumented test process (§5.2).
type ProcessConfig struct {
	// Addr is the checkpoint manager's TCP address.
	Addr string
	// JobID identifies this process in the manager's logs.
	JobID string
	// TElapsed is the hosting resource's age (seconds since it became
	// available) at process start, if known.
	TElapsed float64
	// TimeScale compresses virtual time for testing: wall seconds =
	// virtual seconds × TimeScale. 1 runs in real time; 1e-3 runs a
	// 10-second heartbeat every 10 ms. Transfer durations measured on
	// the wire are divided by TimeScale to recover virtual seconds.
	TimeScale float64
	// MaxIntervals stops the process voluntarily after this many
	// committed checkpoints (0 = run until the context is canceled,
	// the live terminate-on-eviction behavior).
	MaxIntervals int
}

// ProcessReport summarizes a test process run from the client side.
type ProcessReport struct {
	// Model and Params echo the manager's assignment.
	Assign Assign
	// RecoverySec is the measured initial transfer time (virtual
	// seconds).
	RecoverySec float64
	// CheckpointSecs are the measured checkpoint transfer times
	// (virtual seconds), one per committed checkpoint.
	CheckpointSecs []float64
	// Topts are the successive computed work intervals (virtual
	// seconds).
	Topts []float64
	// WorkSec is the total virtual time spent spinning (computing).
	WorkSec float64
	// Heartbeats counts heartbeat messages sent.
	Heartbeats int
	// Evicted reports whether the run ended by cancellation/disconnect
	// rather than by reaching MaxIntervals.
	Evicted bool
}

// RunProcess connects to the checkpoint manager and executes the
// instrumented recovery–compute–checkpoint cycle: time the recovery
// transfer, compute T_opt from the measured cost, spin while
// heart-beating every HeartbeatSec, checkpoint, re-measure, recompute,
// repeat. Cancel ctx to emulate an eviction (the connection drops
// mid-whatever, exactly as Condor's Vanilla universe kills a process).
func RunProcess(ctx context.Context, cfg ProcessConfig) (*ProcessReport, error) {
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1
	}
	conn, err := net.Dial("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("ckptnet: dial manager: %w", err)
	}
	defer conn.Close()
	// Eviction: tear the connection down when the context ends so
	// blocked I/O aborts immediately.
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	rep := &ProcessReport{}
	if err := WriteFrame(conn, MsgHello, Hello{JobID: cfg.JobID, TElapsed: cfg.TElapsed}); err != nil {
		return rep, evictErr(ctx, rep, err)
	}
	if t, err := ReadFrame(conn, &rep.Assign); err != nil || t != MsgAssign {
		if err == nil {
			err = ErrUnexpectedFrame
		}
		return rep, evictErr(ctx, rep, err)
	}
	hb := rep.Assign.HeartbeatSec
	if hb <= 0 {
		hb = 10
	}

	// Initial recovery, timed.
	var begin DataBegin
	if t, err := ReadFrame(conn, &begin); err != nil || t != MsgRecoveryBegin {
		if err == nil {
			err = ErrUnexpectedFrame
		}
		return rep, evictErr(ctx, rep, err)
	}
	start := time.Now()
	if _, err := ReadData(conn, begin.Bytes); err != nil {
		return rep, evictErr(ctx, rep, err)
	}
	rep.RecoverySec = time.Since(start).Seconds() / cfg.TimeScale
	age := cfg.TElapsed + rep.RecoverySec
	measuredC := rep.RecoverySec

	for {
		topt, eff, err := core.Routine(rep.Assign.Model, rep.Assign.Params, age, measuredC, measuredC)
		if err != nil {
			return rep, fmt.Errorf("ckptnet: computing T_opt: %w", err)
		}
		rep.Topts = append(rep.Topts, topt)
		if err := WriteFrame(conn, MsgTopt, ToptReport{
			Topt: topt, MeasuredC: measuredC, Age: age, Efficiency: eff,
		}); err != nil {
			return rep, evictErr(ctx, rep, err)
		}

		// Emulate computation: spin for topt virtual seconds, sending
		// a heartbeat every hb virtual seconds.
		if err := rep.spin(ctx, conn, topt, hb, cfg.TimeScale); err != nil {
			return rep, evictErr(ctx, rep, err)
		}

		// Checkpoint, timed to first ack.
		start = time.Now()
		if err := WriteFrame(conn, MsgCheckpointBegin, DataBegin{Bytes: rep.Assign.CheckpointBytes}); err != nil {
			return rep, evictErr(ctx, rep, err)
		}
		if err := WriteData(conn, rep.Assign.CheckpointBytes); err != nil {
			return rep, evictErr(ctx, rep, err)
		}
		if t, err := ReadFrame(conn, nil); err != nil || t != MsgCheckpointAck {
			if err == nil {
				err = ErrUnexpectedFrame
			}
			return rep, evictErr(ctx, rep, err)
		}
		measuredC = time.Since(start).Seconds() / cfg.TimeScale
		rep.CheckpointSecs = append(rep.CheckpointSecs, measuredC)
		age += topt + measuredC

		if cfg.MaxIntervals > 0 && len(rep.CheckpointSecs) >= cfg.MaxIntervals {
			return rep, nil
		}
	}
}

// spin emulates computation and heartbeats for topt virtual seconds.
func (rep *ProcessReport) spin(ctx context.Context, conn net.Conn, topt, hb, scale float64) error {
	remaining := topt
	for remaining > 0 {
		step := hb
		if step > remaining {
			step = remaining
		}
		wall := time.Duration(step * scale * float64(time.Second))
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(wall):
		}
		remaining -= step
		rep.WorkSec += step
		if err := WriteFrame(conn, MsgHeartbeat, Heartbeat{Elapsed: rep.WorkSec}); err != nil {
			return err
		}
		rep.Heartbeats++
	}
	return nil
}

// evictErr converts I/O failures caused by eviction (context
// cancellation) into a clean evicted report.
func evictErr(ctx context.Context, rep *ProcessReport, err error) error {
	if ctx.Err() != nil {
		rep.Evicted = true
		return nil
	}
	if errors.Is(err, net.ErrClosed) {
		rep.Evicted = true
		return nil
	}
	return err
}
