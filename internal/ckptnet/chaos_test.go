package ckptnet

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/cycleharvest/ckptsched/internal/fit"
)

// chaosManager starts a manager with chaos-friendly timeouts.
func chaosManager(t *testing.T, ckptBytes int64, opts Options) (*Manager, string) {
	t.Helper()
	mgr, err := NewManagerOpts(StaticAssigner(fit.ModelExponential, []float64{1.0 / 9000}, ckptBytes), opts)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := mgr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	return mgr, addr.String()
}

// fastRetry is a quick deterministic retry policy for chaos tests.
func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{
		MaxAttempts: attempts,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		Seed:        42,
	}
}

// TestChaosDropEachMessageType drops, once, each control frame of the
// protocol — on whichever side sends it — and asserts the session
// still completes: aligned drops (topt, heartbeat) are simply absorbed,
// everything else forces a retry that succeeds.
func TestChaosDropEachMessageType(t *testing.T) {
	cases := []struct {
		name        string
		drop        MsgType
		managerSide bool
		needsRetry  bool
	}{
		{"hello", MsgHello, false, true},
		{"topt", MsgTopt, false, false},
		{"heartbeat", MsgHeartbeat, false, false},
		{"checkpoint-begin", MsgCheckpointBegin, false, true},
		{"assign", MsgAssign, true, true},
		{"recovery-begin", MsgRecoveryBegin, true, true},
		{"checkpoint-ack", MsgCheckpointAck, true, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fi := NewFaultInjector(FaultConfig{Seed: 7, DropOnceTypes: []MsgType{tc.drop}})
			opts := Options{HelloTimeout: 400 * time.Millisecond, MinFrameTimeout: 300 * time.Millisecond}
			if tc.managerSide {
				opts.WrapConn = fi.Wrap
			}
			mgr, err := NewManagerOpts(StaticAssigner(fit.ModelExponential, []float64{1.0 / 9000}, 64<<10), opts)
			if err != nil {
				t.Fatal(err)
			}
			addr, err := mgr.Listen("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer mgr.Close()

			cfg := ProcessConfig{
				Addr:         addr.String(),
				JobID:        "drop-" + tc.name,
				TimeScale:    1e-4,
				MaxIntervals: 2,
				FrameTimeout: 300 * time.Millisecond,
				Retry:        fastRetry(5),
			}
			if !tc.managerSide {
				cfg.WrapConn = fi.Wrap
			}
			rep, err := RunProcess(context.Background(), cfg)
			if err != nil {
				t.Fatalf("session did not survive dropped %s: %v", tc.name, err)
			}
			if rep.Evicted {
				t.Fatalf("dropped %s reported as eviction", tc.name)
			}
			if tc.needsRetry && rep.Retries == 0 {
				t.Errorf("dropped %s: expected a session retry, got none", tc.name)
			}
			if !tc.needsRetry && rep.Retries != 0 {
				t.Errorf("dropped %s: unexpected retries %d (aligned drop should be absorbed)", tc.name, rep.Retries)
			}
			// The image committed through all of it.
			rec, ok := mgr.Image(cfg.JobID)
			if !ok || rec.Generation < 2 || rec.Bytes != 64<<10 || rec.CRC32 != ZeroCRC(64<<10) {
				t.Errorf("image after dropped %s = %+v, ok=%v", tc.name, rec, ok)
			}
		})
	}
}

// TestChaosStallPastDeadline injects one stall longer than the
// per-frame deadline; the deadline fires, the session is retried, and
// the retry completes because the stall budget is spent.
func TestChaosStallPastDeadline(t *testing.T) {
	fi := NewFaultInjector(FaultConfig{
		Seed:      3,
		StallProb: 1,
		Stall:     900 * time.Millisecond,
		MaxStalls: 1,
	})
	mgr, addrStr := chaosManager(t, 32<<10, Options{HelloTimeout: 300 * time.Millisecond, MinFrameTimeout: 300 * time.Millisecond})
	rep, err := RunProcess(context.Background(), ProcessConfig{
		Addr:         addrStr,
		JobID:        "stall-1",
		TimeScale:    1e-4,
		MaxIntervals: 1,
		FrameTimeout: 250 * time.Millisecond,
		Retry:        fastRetry(4),
		WrapConn:     fi.Wrap,
	})
	if err != nil {
		t.Fatalf("stalled session did not recover: %v", err)
	}
	if rep.Retries == 0 {
		t.Error("stall past the deadline should have forced a retry")
	}
	if _, ok := mgr.Image("stall-1"); !ok {
		t.Error("no image committed after stall recovery")
	}
}

// TestChaosPartialWrite tears a CheckpointBegin frame in half; the
// manager detects the desynchronized stream as a torn frame and the
// process retries to success.
func TestChaosPartialWrite(t *testing.T) {
	fi := NewFaultInjector(FaultConfig{Seed: 5, PartialOnceTypes: []MsgType{MsgCheckpointBegin}})
	mgr, addrStr := chaosManager(t, 64<<10, Options{MinFrameTimeout: 300 * time.Millisecond})
	rep, err := RunProcess(context.Background(), ProcessConfig{
		Addr:         addrStr,
		JobID:        "partial-1",
		TimeScale:    1e-4,
		MaxIntervals: 2,
		FrameTimeout: 300 * time.Millisecond,
		Retry:        fastRetry(5),
		WrapConn:     fi.Wrap,
	})
	if err != nil {
		t.Fatalf("partial write not survived: %v", err)
	}
	if rep.Retries == 0 {
		t.Error("torn frame should have forced a retry")
	}
	waitSessionDone(t, mgr)
	var torn int
	for _, s := range mgr.Sessions() {
		torn += s.Summarize().TornFrames
	}
	if torn == 0 {
		t.Error("manager never logged the torn frame")
	}
}

// TestChaosCorruptCheckpointNack corrupts one checkpoint data chunk in
// flight: the manager's CRC check rejects the image with a NACK, keeps
// the previous image, and the in-connection retransmit succeeds.
func TestChaosCorruptCheckpointNack(t *testing.T) {
	const ckptBytes = 256 << 10
	fi := NewFaultInjector(FaultConfig{Seed: 11, CorruptOnceAfter: 100 << 10})
	mgr, addrStr := chaosManager(t, ckptBytes, Options{MinFrameTimeout: 500 * time.Millisecond})
	rep, err := RunProcess(context.Background(), ProcessConfig{
		Addr:         addrStr,
		JobID:        "corrupt-1",
		TimeScale:    1e-4,
		MaxIntervals: 2,
		FrameTimeout: 500 * time.Millisecond,
		Retry:        fastRetry(4),
		WrapConn:     fi.Wrap,
	})
	if err != nil {
		t.Fatalf("corrupted checkpoint not survived: %v", err)
	}
	if rep.CkptRetries == 0 {
		t.Error("expected an in-connection checkpoint retransmit after the NACK")
	}
	rec, ok := mgr.Image("corrupt-1")
	if !ok || rec.Bytes != ckptBytes || rec.CRC32 != ZeroCRC(ckptBytes) {
		t.Errorf("committed image corrupt or missing: %+v, ok=%v", rec, ok)
	}
	if rec.Generation != 2 {
		t.Errorf("generation = %d, want 2 (the rejected transfer must not count)", rec.Generation)
	}
}

// TestChaosResetMidTransferImageIntact hard-closes the first connection
// partway through the second checkpoint transfer. The manager must keep
// the first committed image untouched, and the resumed session must
// finish the remaining intervals against it.
func TestChaosResetMidTransferImageIntact(t *testing.T) {
	const ckptBytes = 256 << 10
	fi := NewFaultInjector(FaultConfig{
		Seed:            13,
		ResetAfterBytes: 700 << 10, // recovery (256K) + ckpt1 (256K) + partway into ckpt2
		ResetEvery:      2,         // first connection armed, the retry clean
	})
	mgr, addrStr := chaosManager(t, ckptBytes, Options{MinFrameTimeout: 500 * time.Millisecond})
	rep, err := RunProcess(context.Background(), ProcessConfig{
		Addr:         addrStr,
		JobID:        "reset-1",
		TimeScale:    1e-4,
		MaxIntervals: 3,
		FrameTimeout: 500 * time.Millisecond,
		Retry:        fastRetry(5),
		WrapConn:     fi.Wrap,
	})
	if err != nil {
		t.Fatalf("mid-transfer reset not survived: %v", err)
	}
	if rep.Retries == 0 {
		t.Error("reset should have forced a session retry")
	}
	rec, ok := mgr.Image("reset-1")
	if !ok {
		t.Fatal("no image after campaign")
	}
	if rec.Bytes != ckptBytes || rec.CRC32 != ZeroCRC(ckptBytes) {
		t.Errorf("last good image damaged by torn transfer: %+v", rec)
	}
	if rec.Generation != 3 {
		t.Errorf("generation = %d, want 3 committed checkpoints", rec.Generation)
	}
	// All retries accumulated on one per-job session log.
	waitSessionDone(t, mgr)
	ss := mgr.Sessions()
	if len(ss) != 1 {
		t.Fatalf("sessions = %d, want 1 (resume must reattach)", len(ss))
	}
	sum := ss[0].Summarize()
	if sum.Retries == 0 {
		t.Errorf("manager summary missed the retry: %+v", sum)
	}
}

// waitSessionDone waits for every manager session to be finalized with
// a disconnect, so summaries are stable.
func waitSessionDone(t *testing.T, mgr *Manager) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		done := true
		for _, s := range mgr.Sessions() {
			if last, ok := s.LastEvent(); !ok || last.Kind != EvDisconnected {
				done = false
			}
		}
		if done {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("sessions never finalized")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestManagerCloseListenRace exercises Close racing Listen and the
// closed-manager terminal state (run under -race).
func TestManagerCloseListenRace(t *testing.T) {
	for i := range 20 {
		mgr, err := NewManager(StaticAssigner(fit.ModelExponential, []float64{0.001}, 1024))
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			_, _ = mgr.Listen("127.0.0.1:0")
		}()
		go func() {
			defer wg.Done()
			_ = mgr.Close()
		}()
		wg.Wait()
		_ = mgr.Close() // idempotent
		if _, err := mgr.Listen("127.0.0.1:0"); err == nil {
			t.Fatalf("iteration %d: Listen after Close must fail", i)
		}
	}
}

// TestManagerListenContextCancel shuts the manager down through its
// context.
func TestManagerListenContextCancel(t *testing.T) {
	mgr, err := NewManager(StaticAssigner(fit.ModelExponential, []float64{0.001}, 1024))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	if _, err := mgr.ListenContext(ctx, "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	cancel()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := mgr.Listen("127.0.0.1:0"); err != nil && strings.Contains(err.Error(), "closed") {
			break // Close ran: the manager is in its terminal state
		}
		if time.Now().After(deadline) {
			t.Fatal("context cancellation never closed the manager")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosAcceptanceCampaign is the issue's acceptance scenario: 20
// sessions under 10% frame drops plus one mid-transfer reset per
// session. Every session must complete, torn transfers must never
// damage the last good image, and the session logs must report nonzero
// retry/torn totals.
func TestChaosAcceptanceCampaign(t *testing.T) {
	const (
		sessions  = 20
		ckptBytes = 64 << 10
	)
	mgr, addrStr := chaosManager(t, ckptBytes, Options{
		HelloTimeout:    500 * time.Millisecond,
		MinFrameTimeout: 400 * time.Millisecond,
	})

	errs := make(chan error, sessions)
	for i := range sessions {
		go func() {
			fi := NewFaultInjector(FaultConfig{
				Seed:            1000 + int64(i),
				DropProb:        0.10,
				ResetAfterBytes: 100 << 10, // dies partway through the first checkpoint
				ResetEvery:      2,         // one mid-transfer reset per session
			})
			_, err := RunProcess(context.Background(), ProcessConfig{
				Addr:         addrStr,
				JobID:        fmt.Sprintf("chaos/%02d", i),
				TimeScale:    1e-4,
				MaxIntervals: 2,
				FrameTimeout: 400 * time.Millisecond,
				Retry: RetryPolicy{
					MaxAttempts: 50,
					BackoffBase: 2 * time.Millisecond,
					BackoffMax:  20 * time.Millisecond,
					Seed:        int64(i) + 1,
				},
				WrapConn: fi.Wrap,
			})
			errs <- err
		}()
	}
	for i := range sessions {
		if err := <-errs; err != nil {
			t.Fatalf("session %d aborted: %v", i, err)
		}
	}

	// Every job's last good image is whole.
	for i := range sessions {
		job := fmt.Sprintf("chaos/%02d", i)
		rec, ok := mgr.Image(job)
		if !ok {
			t.Errorf("%s: no committed image", job)
			continue
		}
		if rec.Bytes != ckptBytes || rec.CRC32 != ZeroCRC(ckptBytes) {
			t.Errorf("%s: image damaged: %+v", job, rec)
		}
		if rec.Generation < 2 {
			t.Errorf("%s: generation %d < 2", job, rec.Generation)
		}
	}

	// The chaos left visible, report-ready traces in the session logs.
	waitSessionDone(t, mgr)
	ss := mgr.Sessions()
	if len(ss) != sessions {
		t.Fatalf("sessions = %d, want %d (resumes must reattach)", len(ss), sessions)
	}
	var retries, torn, interrupted int
	for _, s := range ss {
		sum := s.Summarize()
		retries += sum.Retries
		torn += sum.TornFrames
		interrupted += sum.Interrupted
	}
	if retries == 0 {
		t.Error("campaign recorded zero retries under 10% drops + resets")
	}
	if torn+interrupted == 0 {
		t.Error("campaign recorded zero torn/interrupted transfers")
	}

	// The logs round-trip through the durable format with the new event
	// kinds intact.
	var buf bytes.Buffer
	if err := WriteSessions(&buf, ss); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSessions(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var retries2 int
	for _, s := range back {
		retries2 += s.Summarize().Retries
	}
	if retries2 != retries {
		t.Errorf("retries after round trip = %d, want %d", retries2, retries)
	}
}

// TestChaosLinkDeterminism pins the virtual-time chaos primitives: the
// same seed draws the same attempt sequence.
func TestChaosLinkDeterminism(t *testing.T) {
	cl := ChaosLink{
		Inner:  FixedLink("fixed", 500*MB, 100),
		Faults: LinkFaultConfig{TearProb: 0.3, StallProb: 0.2, StallSec: 30, OutageProb: 0.1},
	}
	if cl.Name() != "fixed+chaos" {
		t.Errorf("name = %q", cl.Name())
	}
	draw := func() []TransferAttempt {
		rng := rand.New(rand.NewSource(99))
		out := make([]TransferAttempt, 50)
		for i := range out {
			out[i] = cl.Attempt(500*MB, rng)
		}
		return out
	}
	a, b := draw(), draw()
	var torn int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("attempt %d differs: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Torn {
			torn++
			if a[i].Sec >= a[i].FullSec || a[i].Sec <= 0 {
				t.Errorf("torn attempt %d: Sec %g not inside FullSec %g", i, a[i].Sec, a[i].FullSec)
			}
		} else if a[i].Sec != a[i].FullSec {
			t.Errorf("clean attempt %d: Sec %g != FullSec %g", i, a[i].Sec, a[i].FullSec)
		}
	}
	if torn == 0 {
		t.Error("no torn attempts in 50 draws at TearProb 0.3")
	}
	// Backoff grows and stays within the jittered cap.
	rng := rand.New(rand.NewSource(1))
	prevBase := 0.0
	for attempt := 1; attempt <= 6; attempt++ {
		bo := cl.BackoffSec(attempt, rng)
		if bo <= 0 {
			t.Fatalf("backoff %d = %g", attempt, bo)
		}
		if bo > 60*1.25+1e-9 {
			t.Errorf("backoff %d = %g exceeds jittered cap", attempt, bo)
		}
		_ = prevBase
	}
}
