package ckptnet

import (
	"net"
	"time"
)

// deadlineRW gives a connection per-operation deadlines: every Read
// (Write) renews an absolute deadline ReadTimeout (WriteTimeout) ahead
// of now. A transfer that keeps making progress never times out; a
// stalled peer, a dropped frame, or a dead network surfaces as a
// timeout within one timeout period instead of blocking forever.
//
// The protocol derives ReadTimeout from the heartbeat cadence — a
// healthy peer sends (or is sent) a frame at least every heartbeat
// period, so grace × heartbeat wall-time is a safe bound. Both fields
// may be adjusted between operations; each side of a session runs its
// protocol in a single goroutine.
type deadlineRW struct {
	conn         net.Conn
	ReadTimeout  time.Duration // 0 = no read deadline
	WriteTimeout time.Duration // 0 = no write deadline
}

func (d *deadlineRW) Read(p []byte) (int, error) {
	if d.ReadTimeout > 0 {
		_ = d.conn.SetReadDeadline(time.Now().Add(d.ReadTimeout))
	}
	return d.conn.Read(p)
}

func (d *deadlineRW) Write(p []byte) (int, error) {
	if d.WriteTimeout > 0 {
		_ = d.conn.SetWriteDeadline(time.Now().Add(d.WriteTimeout))
	}
	return d.conn.Write(p)
}

// frameTimeout derives the per-frame deadline from the heartbeat
// cadence: grace heartbeat periods of wall time, floored so fast time
// compression doesn't produce sub-millisecond deadlines, or fallback
// when the peer did not announce a time scale.
func frameTimeout(heartbeatSec, timeScale, grace float64, floor, fallback time.Duration) time.Duration {
	if heartbeatSec <= 0 || timeScale <= 0 {
		return fallback
	}
	d := time.Duration(grace * heartbeatSec * timeScale * float64(time.Second))
	if d < floor {
		return floor
	}
	return d
}
