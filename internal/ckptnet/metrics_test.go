package ckptnet

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/cycleharvest/ckptsched/internal/fit"
	"github.com/cycleharvest/ckptsched/internal/obs"
)

// TestManagerMetricsReconcile drives real sessions end to end and
// checks the registry against the summed per-session summaries — the
// contract that makes the /metrics page trustworthy: every counter
// equals the corresponding Summary field aggregated over Sessions().
func TestManagerMetricsReconcile(t *testing.T) {
	reg := obs.NewRegistry()
	mgr, err := NewManagerOpts(
		StaticAssigner(fit.ModelExponential, []float64{1.0 / 9000}, 256*1024),
		Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := mgr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	const procs = 4
	errs := make(chan error, procs)
	for i := range procs {
		go func(i int) {
			_, err := RunProcess(context.Background(), ProcessConfig{
				Addr:         addr.String(),
				JobID:        fmt.Sprintf("recon/%d", i),
				TimeScale:    1e-4,
				MaxIntervals: 3,
			})
			errs <- err
		}(i)
	}
	for range procs {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	// Wait for every session to finalize (EvDisconnected recorded) so
	// the counters are quiescent.
	deadline := time.Now().Add(5 * time.Second)
	for {
		done := 0
		for _, s := range mgr.Sessions() {
			if last, ok := s.LastEvent(); ok && last.Kind == EvDisconnected {
				done++
			}
		}
		if done == procs {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d sessions finalized", done, procs)
		}
		time.Sleep(5 * time.Millisecond)
	}

	var want Summary
	for _, s := range mgr.Sessions() {
		sum := s.Summarize()
		want.Recoveries += sum.Recoveries
		want.Checkpoints += sum.Checkpoints
		want.Interrupted += sum.Interrupted
		want.Heartbeats += sum.Heartbeats
		want.ToptReports += sum.ToptReports
		want.BytesMoved += sum.BytesMoved
		want.Retries += sum.Retries
		want.TornFrames += sum.TornFrames
		want.Fallbacks += sum.Fallbacks
	}

	snap := reg.Snapshot()
	checks := []struct {
		name string
		want uint64
	}{
		{"ckptnet_sessions_total", procs},
		{"ckptnet_recoveries_total", uint64(want.Recoveries)},
		{"ckptnet_checkpoints_total", uint64(want.Checkpoints)},
		{"ckptnet_interrupted_transfers_total", uint64(want.Interrupted)},
		{"ckptnet_heartbeats_total", uint64(want.Heartbeats)},
		{"ckptnet_topt_reports_total", uint64(want.ToptReports)},
		{"ckptnet_bytes_moved_total", uint64(want.BytesMoved)},
		{"ckptnet_retries_total", uint64(want.Retries)},
		{"ckptnet_torn_frames_total", uint64(want.TornFrames)},
		{"ckptnet_fallbacks_total", uint64(want.Fallbacks)},
	}
	for _, c := range checks {
		if got := snap.Counters[c.name]; got != c.want {
			t.Errorf("%s = %d, want %d (summaries)", c.name, got, c.want)
		}
	}
	if got := snap.Gauges["ckptnet_active_sessions"]; got != 0 {
		t.Errorf("active sessions after drain = %d, want 0", got)
	}
	// Each session heartbeats at least twice, so gap observations exist.
	hb := snap.Histograms["ckptnet_heartbeat_gap_seconds"]
	if want.Heartbeats > procs && hb.Count == 0 {
		t.Error("heartbeat gap histogram recorded nothing")
	}
}

// TestManagerWithoutMetricsIsNoop pins the off switch: a manager built
// without a registry runs the same sessions with all-nil metrics.
func TestManagerWithoutMetricsIsNoop(t *testing.T) {
	mgr, err := NewManager(StaticAssigner(fit.ModelExponential, []float64{1.0 / 9000}, 64*1024))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := mgr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	if _, err := RunProcess(context.Background(), ProcessConfig{
		Addr: addr.String(), JobID: "off", TimeScale: 1e-4, MaxIntervals: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if mgr.metrics.recoveries.Value() != 0 || mgr.metrics.hbGap.Count() != 0 {
		t.Error("nil metrics accumulated values")
	}
}
