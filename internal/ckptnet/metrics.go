package ckptnet

import "github.com/cycleharvest/ckptsched/internal/obs"

// managerMetrics is the manager's live view of the per-session logs:
// every counter is bumped by Manager.record through the same
// event-kind switch SessionLog.Summarize folds with, so at any quiet
// moment each counter equals the corresponding Summary field summed
// over Manager.Sessions() — the reconciliation invariant the metrics
// test asserts. All fields are nil-safe obs metrics; a manager built
// without a registry carries the zero value and pays one predictable
// branch per event.
type managerMetrics struct {
	// sessions counts distinct session logs created (resumed
	// connections reattach and are counted under retries instead);
	// active tracks connections currently inside the serve loop.
	sessions *obs.Counter
	active   *obs.Gauge

	// Transfer outcomes, mirroring Summary: completed recoveries,
	// committed checkpoints (deltaCheckpoints counts the subset that
	// arrived as content-addressed deltas), and transfers cut off by
	// eviction.
	recoveries, checkpoints, interrupted *obs.Counter
	deltaCheckpoints                     *obs.Counter
	// bytesMoved mirrors Summary.BytesMoved: full images for completed
	// transfers plus the partial bytes of interrupted ones.
	bytesMoved *obs.Counter

	// Protocol traffic and resilience events, mirroring Summary.
	heartbeats, toptReports        *obs.Counter
	retries, tornFrames, fallbacks *obs.Counter

	// hbGap observes the manager-side wall-clock gap between
	// consecutive heartbeats of a session — the live view of heartbeat
	// latency and loss (a dropped heartbeat shows up as a gap in the
	// next-higher bucket).
	hbGap *obs.Histogram
}

// newManagerMetrics registers the manager's metrics on r (DESIGN.md
// §11 lists the names). A nil registry yields all-nil metrics:
// instrumentation off.
func newManagerMetrics(r *obs.Registry) managerMetrics {
	return managerMetrics{
		sessions: r.Counter("ckptnet_sessions_total",
			"Distinct process sessions created (resumptions reattach, counted as retries)."),
		active: r.Gauge("ckptnet_active_sessions",
			"Connections currently inside the manager's serve loop."),
		recoveries: r.Counter("ckptnet_recoveries_total",
			"Recovery images streamed to completion."),
		checkpoints: r.Counter("ckptnet_checkpoints_total",
			"Checkpoint images received, CRC-verified, and committed."),
		interrupted: r.Counter("ckptnet_interrupted_transfers_total",
			"Recovery or checkpoint transfers cut off by eviction."),
		deltaCheckpoints: r.Counter("ckptnet_delta_checkpoints_total",
			"Checkpoints committed as content-addressed deltas."),
		bytesMoved: r.Counter("ckptnet_bytes_moved_total",
			"Total network volume in bytes, including partial interrupted transfers."),
		heartbeats: r.Counter("ckptnet_heartbeats_total",
			"Heartbeat frames received."),
		toptReports: r.Counter("ckptnet_topt_reports_total",
			"Per-interval T_opt reports received."),
		retries: r.Counter("ckptnet_retries_total",
			"Sessions resumed after a transport failure."),
		tornFrames: r.Counter("ckptnet_torn_frames_total",
			"Mangled frames: corrupt payloads, lost alignment, CRC-rejected checkpoints."),
		fallbacks: r.Counter("ckptnet_fallbacks_total",
			"Intervals a process scheduled on a fallback T_opt."),
		hbGap: r.Histogram("ckptnet_heartbeat_gap_seconds",
			"Wall-clock gap between consecutive heartbeats of a session.", obs.DefBuckets),
	}
}

// record appends the event to the session log, bumps the matching
// manager counter, and returns the event's sequence id (for trace
// correlation). The switch below must mirror SessionLog.Summarize
// case for case — that shared structure, not an after-the-fact export,
// is what makes the registry reconcile exactly with the summed
// per-session summaries.
func (m *Manager) record(l *SessionLog, kind EventKind, value float64) int64 {
	seq := l.Add(kind, value)
	mm := &m.metrics
	switch kind {
	case EvRecoveryDone:
		mm.recoveries.Inc()
		if value > 0 {
			mm.bytesMoved.Add(uint64(value))
		} else {
			mm.bytesMoved.Add(uint64(l.CheckpointBytes))
		}
	case EvCheckpointDone:
		mm.checkpoints.Inc()
		if value > 0 {
			mm.bytesMoved.Add(uint64(value))
		} else {
			mm.bytesMoved.Add(uint64(l.CheckpointBytes))
		}
	case EvDeltaCheckpointDone:
		mm.checkpoints.Inc()
		mm.deltaCheckpoints.Inc()
		mm.bytesMoved.Add(uint64(value))
	case EvRecoveryInterrupted, EvCheckpointInterrupted:
		mm.interrupted.Inc()
		mm.bytesMoved.Add(uint64(value))
	case EvHeartbeat:
		mm.heartbeats.Inc()
	case EvTopt:
		mm.toptReports.Inc()
	case EvRetry:
		mm.retries.Inc()
	case EvTornFrame:
		mm.tornFrames.Inc()
	case EvFallback:
		mm.fallbacks.Inc()
	}
	return seq
}
