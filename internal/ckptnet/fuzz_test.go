package ckptnet

import (
	"bytes"
	"testing"
	"unicode/utf8"
)

// FuzzReadFrame hardens the wire-frame parser against malformed input:
// whatever bytes arrive, ReadFrame must return (not hang, not panic)
// and never allocate an oversized buffer.
func FuzzReadFrame(f *testing.F) {
	// Seeds: a valid hello frame, a truncated one, garbage.
	var valid bytes.Buffer
	if err := WriteFrame(&valid, MsgHello, Hello{JobID: "seed"}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:3])
	f.Add([]byte("GET / HTTP/1.1\r\n\r\n"))
	f.Add([]byte{1, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var h Hello
		_, _ = ReadFrame(bytes.NewReader(data), &h)
		// Also exercise the discard path.
		_, _ = ReadFrame(bytes.NewReader(data), nil)
	})
}

// FuzzFrameRoundTrip checks that every Hello survives a write/read
// cycle byte-exactly.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add("job-1", 0.0)
	f.Add("", 1e9)
	f.Add("desktop0001/7", -3.5)
	f.Fuzz(func(t *testing.T, jobID string, telapsed float64) {
		if !utf8.ValidString(jobID) {
			t.Skip() // json.Marshal coerces invalid UTF-8 to U+FFFD, so byte-exactness can't hold
		}
		var buf bytes.Buffer
		in := Hello{JobID: jobID, TElapsed: telapsed}
		if err := WriteFrame(&buf, MsgHello, in); err != nil {
			t.Fatalf("marshal failed: %v", err)
		}
		var out Hello
		typ, err := ReadFrame(&buf, &out)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if typ != MsgHello || out.JobID != in.JobID {
			t.Fatalf("round trip mangled frame: %+v vs %+v", out, in)
		}
		// NaN never equals itself; compare bit-for-bit semantics only
		// for ordinary values.
		if out.TElapsed != in.TElapsed && in.TElapsed == in.TElapsed {
			t.Fatalf("t_elapsed mangled: %g vs %g", out.TElapsed, in.TElapsed)
		}
	})
}
