// Package ckptnet implements the paper's §5.2 instrumented checkpoint
// system: a checkpoint manager that serves recovery images and
// receives checkpoints, and a test process that runs the
// recovery–compute–checkpoint cycle, emitting heartbeats every 10
// seconds and recomputing T_opt from each measured transfer time.
//
// The package has two halves. The protocol half (Manager/Process) is a
// real TCP implementation usable on a live network — the cmd/ckpt-mgr
// and cmd/ckpt-proc tools wrap it, and the integration tests run it
// over loopback. The link half models transfer durations for the
// virtual-time experiments: the emulated campus link is calibrated so
// a 500 MB image takes ≈110 s on average, and the emulated wide-area
// link ≈475 s, matching the paper's two manager placements (University
// of Wisconsin campus vs the authors' home institution across the
// Internet).
package ckptnet

import (
	"fmt"
	"math"
	"math/rand"
)

// MB is one megabyte in bytes.
const MB = 1 << 20

// Link models one network path's transfer-time behavior.
type Link interface {
	// TransferTime returns the duration in seconds a transfer of the
	// given size would take, drawn with rng (transfer times vary
	// run-to-run on shared networks).
	TransferTime(bytes int64, rng *rand.Rand) float64
	// Name identifies the link profile.
	Name() string
}

// EmulatedLink is a shared-network path with lognormal variability
// around a mean bandwidth, plus a fixed setup latency.
type EmulatedLink struct {
	// ProfileName labels the link in logs.
	ProfileName string
	// MeanMBps is the long-run average goodput in MB/s.
	MeanMBps float64
	// Sigma is the lognormal jitter parameter (0 = deterministic).
	// The multiplicative noise e^(σZ − σ²/2) is mean-one, so MeanMBps
	// is preserved.
	Sigma float64
	// LatencySec is the per-transfer setup cost in seconds.
	LatencySec float64
}

// TransferTime implements Link.
func (l EmulatedLink) TransferTime(bytes int64, rng *rand.Rand) float64 {
	if bytes <= 0 {
		return l.LatencySec
	}
	base := float64(bytes) / (l.MeanMBps * MB)
	noise := 1.0
	if l.Sigma > 0 && rng != nil {
		noise = math.Exp(l.Sigma*rng.NormFloat64() - l.Sigma*l.Sigma/2)
	}
	return l.LatencySec + base*noise
}

// Name implements Link.
func (l EmulatedLink) Name() string {
	if l.ProfileName != "" {
		return l.ProfileName
	}
	return fmt.Sprintf("emulated(%.3g MB/s)", l.MeanMBps)
}

// CampusLink returns a link profile calibrated to the paper's on-campus
// manager placement: 500 MB in ≈110 s (≈4.5 MB/s) with mild
// variability.
func CampusLink() EmulatedLink {
	return EmulatedLink{
		ProfileName: "campus",
		MeanMBps:    500.0 * MB / 110.0 / MB, // ≈4.545 MB/s
		Sigma:       0.15,
		LatencySec:  0.05,
	}
}

// WideAreaLink returns a link profile calibrated to the paper's
// cross-Internet manager placement: 500 MB in ≈475 s (≈1.05 MB/s) with
// substantial variability.
func WideAreaLink() EmulatedLink {
	return EmulatedLink{
		ProfileName: "wide-area",
		MeanMBps:    500.0 * MB / 475.0 / MB, // ≈1.053 MB/s
		Sigma:       0.35,
		LatencySec:  0.2,
	}
}

// FixedLink returns a deterministic link with the given transfer
// duration for size refBytes (useful in tests and ablations).
func FixedLink(name string, refBytes int64, seconds float64) EmulatedLink {
	return EmulatedLink{
		ProfileName: name,
		MeanMBps:    float64(refBytes) / seconds / MB,
	}
}
