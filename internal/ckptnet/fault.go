package ckptnet

import (
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/cycleharvest/ckptsched/internal/obs"
)

// This file is the chaos half of the resilience layer. It has two
// parts, one per transport:
//
//   - FaultInjector wraps real net.Conn connections (the TCP
//     Manager/Process protocol) and injects frame drops, stalls,
//     partial writes, corrupt bytes, and mid-transfer resets, all
//     seeded deterministically so a chaos test replays byte-for-byte.
//
//   - ChaosLink wraps a Link (the virtual-time transfer model the
//     live campaigns use) and injects torn transfers, stall latency,
//     and manager-unreachable outages with the same determinism.

// FaultConfig selects which faults a FaultInjector applies and how
// often. All probabilities are per operation (one Write or Read call);
// a control frame is a single Write, so DropProb is effectively a
// per-frame drop rate, and data streams see one roll per 64 KiB chunk.
type FaultConfig struct {
	// Seed makes the injected fault sequence reproducible. Each
	// wrapped connection derives its own generator from Seed and the
	// order in which it was wrapped.
	Seed int64

	// DropProb silently discards an outgoing buffer: the writer is
	// told the bytes were sent, the peer never sees them. Dropping a
	// whole control frame leaves the stream aligned (the peer just
	// misses it); dropping a data chunk desynchronizes the transfer
	// and the peer's deadline eventually fires.
	DropProb float64
	// CorruptProb flips bytes in a buffer, on writes and reads alike.
	// Corrupt control frames fail to parse (torn frame); corrupt
	// checkpoint data fails CRC verification and is rejected without
	// touching the last good image.
	CorruptProb float64
	// PartialProb writes only a prefix of the buffer while reporting
	// the full length, tearing the frame stream mid-frame.
	PartialProb float64

	// StallProb sleeps Stall before the operation proceeds. Combined
	// with per-frame deadlines, a stall longer than the deadline looks
	// like a hung manager.
	StallProb float64
	Stall     time.Duration
	// MaxStalls bounds the total stalls injected across the injector
	// (0 = unlimited).
	MaxStalls int

	// ResetAfterBytes hard-closes the connection once that many bytes
	// have moved through it in either direction — a mid-transfer
	// connection reset (0 = off).
	ResetAfterBytes int64
	// ResetEvery applies the reset to every Nth wrapped connection
	// (1-based count, default every connection). With session retry
	// enabled, ResetEvery=2 gives the classic "first attempt dies
	// mid-transfer, the retry goes through" pattern.
	ResetEvery int

	// DropOnceTypes drops the first outgoing control frame of each
	// listed type, once per injector — the surgical knob the
	// per-message chaos tests use. Frames are recognized by their
	// leading type byte (control frames are written in one buffer).
	DropOnceTypes []MsgType
	// PartialOnceTypes truncates the first outgoing control frame of
	// each listed type to half its length, once per injector.
	PartialOnceTypes []MsgType
	// CorruptOnceAfter corrupts exactly one outgoing buffer: the first
	// Write after that many bytes have been written through the
	// connection (0 = off). Aimed at checkpoint data, it produces a
	// CRC rejection rather than a torn stream.
	CorruptOnceAfter int64

	// Tracer, when set, records every injected fault as a
	// "chaos.<kind>" instant event on pid 0 (the injector's lane),
	// tid = 1-based wrap order of the connection — so a timeline can
	// attribute a torn frame or retry to the fault that caused it.
	Tracer *obs.Tracer
}

// FaultInjector builds fault-wrapped connections. One injector is
// shared by all connections of a manager (or process) so that
// once-only faults and reset budgets apply across retries.
type FaultInjector struct {
	cfg FaultConfig

	mu        sync.Mutex
	conns     int
	stalls    int
	onceDrop  map[MsgType]bool
	oncePart  map[MsgType]bool
	corrupted bool
}

// NewFaultInjector returns an injector for the given configuration.
func NewFaultInjector(cfg FaultConfig) *FaultInjector {
	if cfg.ResetEvery <= 0 {
		cfg.ResetEvery = 1
	}
	fi := &FaultInjector{
		cfg:      cfg,
		onceDrop: make(map[MsgType]bool),
		oncePart: make(map[MsgType]bool),
	}
	for _, t := range cfg.DropOnceTypes {
		fi.onceDrop[t] = false
	}
	for _, t := range cfg.PartialOnceTypes {
		fi.oncePart[t] = false
	}
	return fi
}

// Wrap returns conn with the injector's faults applied. Use it as
// Options.WrapConn on the manager or ProcessConfig.WrapConn on the
// process.
func (fi *FaultInjector) Wrap(conn net.Conn) net.Conn {
	fi.mu.Lock()
	idx := fi.conns
	fi.conns++
	fi.mu.Unlock()
	return &faultConn{
		Conn:       conn,
		fi:         fi,
		idx:        idx,
		rng:        rand.New(rand.NewSource(fi.cfg.Seed + int64(idx)*1_000_003)),
		resetArmed: fi.cfg.ResetAfterBytes > 0 && idx%fi.cfg.ResetEvery == 0,
	}
}

// takeOnce claims a once-only fault slot for frame type t from m;
// returns true exactly once per registered type.
func (fi *FaultInjector) takeOnce(m map[MsgType]bool, t MsgType) bool {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	used, registered := m[t]
	if !registered || used {
		return false
	}
	m[t] = true
	return true
}

// takeStall claims one stall from the MaxStalls budget.
func (fi *FaultInjector) takeStall() bool {
	if fi.cfg.MaxStalls <= 0 {
		return true
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	if fi.stalls >= fi.cfg.MaxStalls {
		return false
	}
	fi.stalls++
	return true
}

// takeCorruptOnce claims the single CorruptOnceAfter fault.
func (fi *FaultInjector) takeCorruptOnce() bool {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	if fi.corrupted {
		return false
	}
	fi.corrupted = true
	return true
}

// faultConn applies a FaultInjector's faults to one connection. The
// rng is guarded by mu: the protocol runs each side in one goroutine,
// but evictions close conns from timer goroutines and -race must stay
// clean.
type faultConn struct {
	net.Conn
	fi  *FaultInjector
	idx int
	mu  sync.Mutex
	rng *rand.Rand

	resetArmed bool
	resetDone  bool
	moved      int64
	written    int64
}

// inject records a fired fault on the injector's trace lane (nil-safe;
// "n" is the byte count the fault touched).
func (c *faultConn) inject(kind string, n int) {
	c.fi.cfg.Tracer.Event(0, uint64(c.idx)+1, "chaos."+kind, obs.AttrInt("bytes", int64(n)))
}

// roll draws a uniform variate under the lock.
func (c *faultConn) roll() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Float64()
}

// account moves n bytes through the reset accounting and reports
// whether the connection should reset now.
func (c *faultConn) account(n int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.moved += int64(n)
	if c.resetArmed && !c.resetDone && c.moved >= c.fi.cfg.ResetAfterBytes {
		c.resetDone = true
		return true
	}
	return false
}

// isControlFrame reports whether b looks like a single control frame:
// the protocol writes frames in one buffer, so the first byte is the
// message type and the header length matches the buffer.
func isControlFrame(b []byte) (MsgType, bool) {
	if len(b) < 5 {
		return 0, false
	}
	t := MsgType(b[0])
	if t < MsgHello || t > MsgCheckpointNack {
		return 0, false
	}
	n := int(uint32(b[1])<<24 | uint32(b[2])<<16 | uint32(b[3])<<8 | uint32(b[4]))
	return t, len(b) == 5+n
}

// maybeStall sleeps if a stall fault fires. Deadlines are absolute, so
// a stall past the peer's (or our own) deadline surfaces as a timeout.
func (c *faultConn) maybeStall() {
	cfg := &c.fi.cfg
	if cfg.StallProb <= 0 || cfg.Stall <= 0 {
		return
	}
	if c.roll() < cfg.StallProb && c.fi.takeStall() {
		c.inject("stall", 0)
		time.Sleep(cfg.Stall)
	}
}

// corrupt flips a few bytes of a copy of b.
func (c *faultConn) corrupt(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	c.mu.Lock()
	defer c.mu.Unlock()
	flips := 1 + c.rng.Intn(3)
	for range flips {
		out[c.rng.Intn(len(out))] ^= 0xA5
	}
	return out
}

func (c *faultConn) Write(b []byte) (int, error) {
	if len(b) == 0 {
		return c.Conn.Write(b)
	}
	cfg := &c.fi.cfg
	c.maybeStall()

	if t, ok := isControlFrame(b); ok {
		if c.fi.takeOnce(c.fi.onceDrop, t) {
			c.inject("drop", len(b))
			return len(b), nil
		}
		if c.fi.takeOnce(c.fi.oncePart, t) {
			c.inject("partial", len(b)/2)
			if _, err := c.Conn.Write(b[:len(b)/2]); err != nil {
				return 0, err
			}
			return len(b), nil
		}
	}
	if cfg.CorruptOnceAfter > 0 {
		c.mu.Lock()
		hit := c.written >= cfg.CorruptOnceAfter
		c.mu.Unlock()
		if hit && c.fi.takeCorruptOnce() {
			c.inject("corrupt", len(b))
			b = c.corrupt(b)
		}
	}
	if cfg.DropProb > 0 && c.roll() < cfg.DropProb {
		c.inject("drop", len(b))
		c.noteWritten(len(b))
		return len(b), nil
	}
	if cfg.PartialProb > 0 && c.roll() < cfg.PartialProb && len(b) > 1 {
		c.inject("partial", len(b)/2)
		if _, err := c.Conn.Write(b[:len(b)/2]); err != nil {
			return 0, err
		}
		c.noteWritten(len(b))
		return len(b), nil
	}
	if cfg.CorruptProb > 0 && c.roll() < cfg.CorruptProb {
		c.inject("corrupt", len(b))
		b = c.corrupt(b)
	}
	n, err := c.Conn.Write(b)
	c.noteWritten(n)
	if err == nil && c.account(n) {
		c.inject("reset", n)
		c.Conn.Close()
		return n, net.ErrClosed
	}
	return n, err
}

func (c *faultConn) noteWritten(n int) {
	c.mu.Lock()
	c.written += int64(n)
	c.mu.Unlock()
}

func (c *faultConn) Read(b []byte) (int, error) {
	c.maybeStall()
	n, err := c.Conn.Read(b)
	cfg := &c.fi.cfg
	if n > 0 && cfg.CorruptProb > 0 && c.roll() < cfg.CorruptProb {
		c.inject("corrupt", n)
		mangled := c.corrupt(b[:n])
		copy(b, mangled)
	}
	if err == nil && c.account(n) {
		c.inject("reset", n)
		c.Conn.Close()
		return n, nil // deliver what arrived; the next op sees the reset
	}
	return n, err
}

// LinkFaultConfig configures chaos on a virtual-time Link: torn
// transfers, added stall latency, manager-unreachable outages, and
// the bounded retry policy the live runner applies when they strike.
type LinkFaultConfig struct {
	// TearProb is the per-attempt probability the transfer dies
	// partway through (connection reset / eviction of the path).
	TearProb float64
	// StallProb adds StallSec of dead time to an attempt.
	StallProb float64
	StallSec  float64
	// OutageProb is the probability a schedule recomputation finds the
	// manager unreachable, forcing the process onto its last assigned
	// schedule (or the conservative exponential interval).
	OutageProb float64

	// MaxAttempts bounds transfer retries before the process degrades
	// (default 3).
	MaxAttempts int
	// BackoffBaseSec and BackoffMaxSec shape the exponential backoff
	// between attempts, in virtual seconds (defaults 5 and 60).
	BackoffBaseSec float64
	BackoffMaxSec  float64
	// JitterFrac randomizes each backoff by ±JitterFrac (default 0.25).
	JitterFrac float64
}

func (f *LinkFaultConfig) setDefaults() {
	if f.MaxAttempts <= 0 {
		f.MaxAttempts = 3
	}
	if f.BackoffBaseSec <= 0 {
		f.BackoffBaseSec = 5
	}
	if f.BackoffMaxSec <= 0 {
		f.BackoffMaxSec = 60
	}
	if f.JitterFrac <= 0 {
		f.JitterFrac = 0.25
	}
}

// TransferAttempt is the outcome of one chaotic transfer attempt.
type TransferAttempt struct {
	// Sec is how long the attempt occupied the link: the full transfer
	// when it completed, the time until the tear when it didn't.
	Sec float64
	// FullSec is the duration the transfer would have taken untorn
	// (used to prorate partial network volume).
	FullSec float64
	// Torn reports whether the attempt died partway.
	Torn bool
}

// ChaosLink wraps a Link with fault injection for the virtual-time
// live campaigns. It still implements Link (clean transfer times), and
// the live runner detects the extra methods to drive retries,
// degradation, and chaos accounting.
type ChaosLink struct {
	Inner  Link
	Faults LinkFaultConfig
}

// TransferTime implements Link by delegating to the inner link.
func (c ChaosLink) TransferTime(bytes int64, rng *rand.Rand) float64 {
	return c.Inner.TransferTime(bytes, rng)
}

// Name implements Link.
func (c ChaosLink) Name() string { return c.Inner.Name() + "+chaos" }

// Attempt draws one transfer attempt: its clean duration from the
// inner link, plus any stall, tear, or both.
func (c ChaosLink) Attempt(bytes int64, rng *rand.Rand) TransferAttempt {
	f := c.Faults
	f.setDefaults()
	full := c.Inner.TransferTime(bytes, rng)
	if f.StallProb > 0 && rng.Float64() < f.StallProb {
		full += f.StallSec
	}
	a := TransferAttempt{Sec: full, FullSec: full}
	if f.TearProb > 0 && rng.Float64() < f.TearProb {
		a.Torn = true
		// Tear somewhere in the middle 90% of the transfer.
		a.Sec = full * (0.05 + 0.9*rng.Float64())
	}
	return a
}

// Unreachable reports whether a schedule recomputation finds the
// manager down.
func (c ChaosLink) Unreachable(rng *rand.Rand) bool {
	return c.Faults.OutageProb > 0 && rng.Float64() < c.Faults.OutageProb
}

// MaxAttempts is the per-transfer retry bound.
func (c ChaosLink) MaxAttempts() int {
	f := c.Faults
	f.setDefaults()
	return f.MaxAttempts
}

// BackoffSec returns the jittered exponential backoff before retry
// attempt (1-based), in virtual seconds.
func (c ChaosLink) BackoffSec(attempt int, rng *rand.Rand) float64 {
	f := c.Faults
	f.setDefaults()
	b := f.BackoffBaseSec
	for i := 1; i < attempt; i++ {
		b *= 2
		if b >= f.BackoffMaxSec {
			b = f.BackoffMaxSec
			break
		}
	}
	if b > f.BackoffMaxSec {
		b = f.BackoffMaxSec
	}
	return b * (1 + f.JitterFrac*(2*rng.Float64()-1))
}
