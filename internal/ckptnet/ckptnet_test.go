package ckptnet

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/cycleharvest/ckptsched/internal/fit"
)

func TestEmulatedLinkCalibration(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	campus := CampusLink()
	wan := WideAreaLink()
	const n = 20000
	var cSum, wSum float64
	for range n {
		cSum += campus.TransferTime(500*MB, rng)
		wSum += wan.TransferTime(500*MB, rng)
	}
	cMean, wMean := cSum/n, wSum/n
	// The paper's measured averages: 110 s on campus, 475 s wide-area.
	if math.Abs(cMean-110) > 5 {
		t.Errorf("campus mean transfer = %g s, want ≈110", cMean)
	}
	if math.Abs(wMean-475) > 20 {
		t.Errorf("wide-area mean transfer = %g s, want ≈475", wMean)
	}
	if campus.Name() != "campus" || wan.Name() != "wide-area" {
		t.Errorf("names: %q, %q", campus.Name(), wan.Name())
	}
}

func TestEmulatedLinkDeterministicWithoutSigma(t *testing.T) {
	l := FixedLink("fixed", 500*MB, 100)
	got := l.TransferTime(500*MB, nil)
	if math.Abs(got-100) > 1e-9 {
		t.Errorf("fixed transfer = %g, want 100", got)
	}
	// Scales linearly with size.
	if half := l.TransferTime(250*MB, nil); math.Abs(half-50) > 1e-9 {
		t.Errorf("half-size transfer = %g, want 50", half)
	}
	// Zero bytes costs only latency.
	l2 := EmulatedLink{MeanMBps: 1, LatencySec: 0.5}
	if got := l2.TransferTime(0, nil); got != 0.5 {
		t.Errorf("zero-byte transfer = %g", got)
	}
	if !strings.Contains(l2.Name(), "emulated") {
		t.Errorf("default name = %q", l2.Name())
	}
}

func TestEmulatedLinkJitterIsMeanPreserving(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := EmulatedLink{MeanMBps: 2, Sigma: 0.5}
	const n = 300000
	sum := 0.0
	for range n {
		sum += l.TransferTime(100*MB, rng)
	}
	want := 100.0 / 2
	if math.Abs(sum/n-want)/want > 0.02 {
		t.Errorf("jittered mean = %g, want %g", sum/n, want)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Assign{Model: fit.ModelHyperexp2, Params: []float64{0.5, 0.5, 0.1, 0.001}, CheckpointBytes: 500 * MB, HeartbeatSec: 10}
	if err := WriteFrame(&buf, MsgAssign, in); err != nil {
		t.Fatal(err)
	}
	var out Assign
	typ, err := ReadFrame(&buf, &out)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgAssign {
		t.Errorf("type = %d", typ)
	}
	if out.Model != in.Model || out.CheckpointBytes != in.CheckpointBytes || len(out.Params) != 4 {
		t.Errorf("round trip = %+v", out)
	}
}

func TestReadFrameErrors(t *testing.T) {
	// Truncated header.
	if _, err := ReadFrame(strings.NewReader("\x01\x00"), nil); err == nil {
		t.Error("truncated header should error")
	}
	// Oversized frame.
	var buf bytes.Buffer
	buf.Write([]byte{1, 0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf, nil); err == nil {
		t.Error("oversized frame should error")
	}
	// Bad JSON payload.
	buf.Reset()
	buf.Write([]byte{1, 0, 0, 0, 2})
	buf.WriteString("{{")
	var out Hello
	if _, err := ReadFrame(&buf, &out); err == nil {
		t.Error("bad payload should error")
	}
}

func TestDataStream(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteData(&buf, 200000); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 200000 {
		t.Fatalf("wrote %d", buf.Len())
	}
	got, err := ReadData(&buf, 200000)
	if err != nil || got != 200000 {
		t.Errorf("read %d, %v", got, err)
	}
	// Short stream reports the partial count.
	buf.Reset()
	if err := WriteData(&buf, 1000); err != nil {
		t.Fatal(err)
	}
	got, err = ReadData(&buf, 5000)
	if err == nil {
		t.Error("short read should error")
	}
	if got != 1000 {
		t.Errorf("partial read = %d", got)
	}
}

func TestSessionLogSummary(t *testing.T) {
	l := &SessionLog{JobID: "j", CheckpointBytes: 100}
	l.Add(EvConnected, 0)
	l.Add(EvRecoveryDone, 0)
	l.Add(EvTopt, 500)
	l.Add(EvHeartbeat, 10)
	l.Add(EvHeartbeat, 20)
	l.Add(EvCheckpointDone, 0)
	l.Add(EvCheckpointInterrupted, 40)
	l.Add(EvDisconnected, 0)
	s := l.Summarize()
	if s.Recoveries != 1 || s.Checkpoints != 1 || s.Interrupted != 1 {
		t.Errorf("summary = %+v", s)
	}
	if s.BytesMoved != 100+100+40 {
		t.Errorf("bytes = %d", s.BytesMoved)
	}
	if s.Heartbeats != 2 || s.LastHeartbeat != 20 || s.ToptReports != 1 {
		t.Errorf("summary = %+v", s)
	}
}

func TestEventKindString(t *testing.T) {
	if EvRecoveryDone.String() != "recovery-done" || EventKind(99).String() != "event(99)" {
		t.Error("event kind strings wrong")
	}
}

func TestManagerProcessIntegration(t *testing.T) {
	mgr, err := NewManager(StaticAssigner(fit.ModelExponential, []float64{1.0 / 9000}, 256*1024))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := mgr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	rep, err := RunProcess(context.Background(), ProcessConfig{
		Addr:         addr.String(),
		JobID:        "itest-1",
		TimeScale:    1e-4, // 10 s of virtual heartbeat -> 1 ms wall
		MaxIntervals: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Evicted {
		t.Error("voluntary completion flagged as eviction")
	}
	if len(rep.CheckpointSecs) != 2 || len(rep.Topts) < 2 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.RecoverySec <= 0 || rep.WorkSec <= 0 || rep.Heartbeats == 0 {
		t.Errorf("report = %+v", rep)
	}
	// The manager saw the whole session.
	sessions := mgr.Sessions()
	if len(sessions) != 1 {
		t.Fatalf("sessions = %d", len(sessions))
	}
	s := sessions[0].Summarize()
	if s.Recoveries != 1 || s.Checkpoints != 2 || s.ToptReports < 2 || s.Heartbeats == 0 {
		t.Errorf("manager summary = %+v", s)
	}
	if sessions[0].JobID != "itest-1" {
		t.Errorf("job id = %q", sessions[0].JobID)
	}
}

func TestManagerProcessEviction(t *testing.T) {
	mgr, err := NewManager(StaticAssigner(fit.ModelWeibull, []float64{0.43, 3409}, 4*MB))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := mgr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	// Evict shortly after start: with a large image relative to the
	// deadline the process dies during a transfer or early spin.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	rep, err := RunProcess(ctx, ProcessConfig{
		Addr:      addr.String(),
		JobID:     "evicted-1",
		TimeScale: 1e-3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Evicted {
		t.Error("expected eviction")
	}
	// Give the manager a beat to finalize the session log.
	deadline := time.Now().Add(2 * time.Second)
	for {
		ss := mgr.Sessions()
		if len(ss) == 1 {
			if last, ok := ss[0].LastEvent(); ok && last.Kind == EvDisconnected {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("manager never finalized the session")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestManagerRejectsGarbage(t *testing.T) {
	mgr, err := NewManager(StaticAssigner(fit.ModelExponential, []float64{0.001}, 1024))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := mgr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	// The manager should drop the connection without logging a
	// session.
	buf := make([]byte, 16)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		// Any bytes back would be wrong for a garbage hello... the
		// read should fail with EOF when the manager hangs up.
		t.Error("manager replied to garbage")
	} else if err != io.EOF && !strings.Contains(err.Error(), "reset") && !strings.Contains(err.Error(), "closed") {
		t.Logf("read ended with %v (acceptable)", err)
	}
	if n := len(mgr.Sessions()); n != 0 {
		t.Errorf("garbage created %d sessions", n)
	}
}

func TestManagerManyConcurrentProcesses(t *testing.T) {
	// Stress the manager with parallel sessions (run under -race in
	// CI): concurrent accept, per-session logging, and clean shutdown.
	mgr, err := NewManager(StaticAssigner(fit.ModelExponential, []float64{1.0 / 9000}, 64*1024))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := mgr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	const procs = 10
	errs := make(chan error, procs)
	for i := range procs {
		i := i
		go func() {
			_, err := RunProcess(context.Background(), ProcessConfig{
				Addr:         addr.String(),
				JobID:        fmt.Sprintf("stress/%d", i),
				TimeScale:    1e-4,
				MaxIntervals: 2,
			})
			errs <- err
		}()
	}
	for range procs {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	sessions := mgr.Sessions()
	if len(sessions) != procs {
		t.Fatalf("sessions = %d, want %d", len(sessions), procs)
	}
	seen := make(map[string]bool)
	for _, s := range sessions {
		if seen[s.JobID] {
			t.Errorf("duplicate session %q", s.JobID)
		}
		seen[s.JobID] = true
		sum := s.Summarize()
		if sum.Recoveries != 1 || sum.Checkpoints != 2 {
			t.Errorf("%s: summary %+v", s.JobID, sum)
		}
	}
}

func TestNewManagerNilAssigner(t *testing.T) {
	if _, err := NewManager(nil); err == nil {
		t.Error("nil assigner should error")
	}
}

func TestManagerString(t *testing.T) {
	mgr, err := NewManager(StaticAssigner(fit.ModelExponential, []float64{0.001}, 1024))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(mgr.String(), "unbound") {
		t.Errorf("unbound manager string = %q", mgr.String())
	}
	if _, err := mgr.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	if !strings.Contains(mgr.String(), "127.0.0.1") {
		t.Errorf("bound manager string = %q", mgr.String())
	}
}
