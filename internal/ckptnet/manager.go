package ckptnet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/cycleharvest/ckptsched/internal/fit"
	"github.com/cycleharvest/ckptsched/internal/imagestore"
	"github.com/cycleharvest/ckptsched/internal/obs"
)

// Assigner decides which availability model a connecting test process
// should use — the manager-side policy. The paper's manager rotates
// among the four families and parameterizes each from the 18-month
// trace archive of the host the process landed on.
type Assigner interface {
	Assign(h Hello) (Assign, error)
}

// AssignerFunc adapts a function to the Assigner interface.
type AssignerFunc func(h Hello) (Assign, error)

// Assign implements Assigner.
func (f AssignerFunc) Assign(h Hello) (Assign, error) { return f(h) }

// StaticAssigner always assigns the same model and parameters.
func StaticAssigner(m fit.Model, params []float64, bytes int64) Assigner {
	return AssignerFunc(func(Hello) (Assign, error) {
		return Assign{Model: m, Params: params, CheckpointBytes: bytes, HeartbeatSec: 10}, nil
	})
}

// Options tunes the manager's failure handling. The zero value gets
// production defaults; chaos tests shrink the timeouts.
type Options struct {
	// HelloTimeout bounds the wait for a new connection's first frame
	// (default 30 s) — a dial that never speaks doesn't pin a session
	// goroutine.
	HelloTimeout time.Duration
	// IdleTimeout is the per-frame read deadline for clients that did
	// not announce a time scale in Hello (default 5 min).
	IdleTimeout time.Duration
	// HeartbeatGrace scales the derived per-frame deadline: the
	// deadline is Grace heartbeat periods of wall time, so a healthy
	// process can drop Grace−1 consecutive heartbeats before the
	// manager declares the session dead (default 4).
	HeartbeatGrace float64
	// MinFrameTimeout floors the derived deadline so aggressive time
	// compression doesn't make loopback scheduling jitter look like a
	// failure (default 2 s).
	MinFrameTimeout time.Duration
	// WriteTimeout is the per-Write deadline for frames and data
	// chunks (default 30 s).
	WriteTimeout time.Duration
	// WrapConn, when set, wraps every accepted connection — the hook
	// the FaultInjector uses.
	WrapConn func(net.Conn) net.Conn
	// Metrics, when set, receives the manager's counters, the active-
	// session gauge, and the heartbeat-gap histogram (names in DESIGN.md
	// §11). Nil leaves instrumentation off at zero cost.
	Metrics *obs.Registry
	// Tracer, when set, records per-session timelines: one "session"
	// span per connection, child spans per transfer, and instant events
	// for heartbeats, retries, torn frames, and T_opt reports — each
	// carrying the SessionLog sequence id as its "seq" attr (DESIGN.md
	// §12). Nil leaves tracing off at zero cost.
	Tracer *obs.Tracer
}

func (o *Options) setDefaults() {
	if o.HelloTimeout <= 0 {
		o.HelloTimeout = 30 * time.Second
	}
	if o.IdleTimeout <= 0 {
		o.IdleTimeout = 5 * time.Minute
	}
	if o.HeartbeatGrace <= 0 {
		o.HeartbeatGrace = 4
	}
	if o.MinFrameTimeout <= 0 {
		o.MinFrameTimeout = 2 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 30 * time.Second
	}
}

// ImageRecord is the manager's durable metadata for a job's last good
// checkpoint image. Commit is atomic: a torn or corrupt transfer never
// replaces the previous record.
type ImageRecord struct {
	// Generation counts committed checkpoints for the job.
	Generation int
	// Bytes is the image size.
	Bytes int64
	// CRC32 is the verified checksum of the stored image.
	CRC32 uint32
}

// Manager is the checkpoint manager: a TCP server that serves recovery
// images, receives checkpoints, and logs every session event.
type Manager struct {
	assigner Assigner
	opts     Options
	metrics  managerMetrics

	// store holds the committed content of jobs that checkpoint in a
	// content mode (full or delta); legacy zero-stream jobs only touch
	// the images metadata map.
	store *imagestore.Store

	mu       sync.Mutex
	listener net.Listener
	sessions []*SessionLog
	byJob    map[string]*SessionLog
	images   map[string]ImageRecord
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool
}

// NewManager creates a manager with the given assignment policy and
// default Options.
func NewManager(a Assigner) (*Manager, error) {
	return NewManagerOpts(a, Options{})
}

// NewManagerOpts creates a manager with explicit failure-handling
// options.
func NewManagerOpts(a Assigner, opts Options) (*Manager, error) {
	if a == nil {
		return nil, errors.New("ckptnet: nil assigner")
	}
	opts.setDefaults()
	return &Manager{
		assigner: a,
		opts:     opts,
		metrics:  newManagerMetrics(opts.Metrics),
		store:    imagestore.NewStore(),
		byJob:    make(map[string]*SessionLog),
		images:   make(map[string]ImageRecord),
		conns:    make(map[net.Conn]struct{}),
	}, nil
}

// Store exposes the manager's content-addressed image store (tests and
// tooling inspect committed images through it).
func (m *Manager) Store() *imagestore.Store { return m.store }

// Listen starts accepting test-process connections on addr (e.g.
// "127.0.0.1:0") and returns the bound address.
func (m *Manager) Listen(addr string) (net.Addr, error) {
	return m.ListenContext(context.Background(), addr)
}

// ListenContext is Listen with cancellation: when ctx ends the manager
// shuts down as if Close had been called — the listener stops and
// in-flight sessions are torn down, so a stuck campaign can always be
// canceled from the caller.
func (m *Manager) ListenContext(ctx context.Context, addr string) (net.Addr, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, errors.New("ckptnet: manager closed")
	}
	if m.listener != nil {
		m.mu.Unlock()
		return nil, errors.New("ckptnet: manager already listening")
	}
	m.mu.Unlock()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	if m.closed {
		// Lost the race with Close: don't leak the listener.
		m.mu.Unlock()
		ln.Close()
		return nil, errors.New("ckptnet: manager closed")
	}
	m.listener = ln
	// Register with the WaitGroup inside the same critical section that
	// publishes the listener: Close either observes the listener (and
	// this Add happened before its Wait) or marks the manager closed
	// before we get here — never an unsynchronized Add/Wait pair.
	m.wg.Add(1)
	m.mu.Unlock()

	if ctx.Done() != nil {
		context.AfterFunc(ctx, func() { _ = m.Close() })
	}
	go m.acceptLoop(ln)
	return ln.Addr(), nil
}

func (m *Manager) acceptLoop(ln net.Listener) {
	defer m.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		if m.opts.WrapConn != nil {
			conn = m.opts.WrapConn(conn)
		}
		if !m.track(conn) {
			conn.Close()
			return
		}
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			defer m.untrack(conn)
			defer conn.Close()
			m.serve(conn)
		}()
	}
}

// track registers a live connection so Close can tear it down; it
// refuses once the manager is closed.
func (m *Manager) track(conn net.Conn) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	m.conns[conn] = struct{}{}
	return true
}

func (m *Manager) untrack(conn net.Conn) {
	m.mu.Lock()
	delete(m.conns, conn)
	m.mu.Unlock()
}

// Close stops the listener, tears down in-flight sessions, and waits
// for them to drain. It is idempotent and safe to race with Listen.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return nil
	}
	m.closed = true
	var err error
	if m.listener != nil {
		err = m.listener.Close()
	}
	for c := range m.conns {
		c.Close()
	}
	m.mu.Unlock()
	m.wg.Wait()
	return err
}

// Sessions returns the logs of all sessions seen so far (live and
// finished).
func (m *Manager) Sessions() []*SessionLog {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*SessionLog, len(m.sessions))
	copy(out, m.sessions)
	return out
}

// Image returns the last good checkpoint image record for a job, if
// one has ever been committed.
func (m *Manager) Image(jobID string) (ImageRecord, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.images[jobID]
	return rec, ok
}

// commitImage atomically replaces a job's last good image record; it
// is called only after the full stream arrived and its CRC verified.
func (m *Manager) commitImage(jobID string, bytes int64, crc uint32) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec := m.images[jobID]
	rec.Generation++
	rec.Bytes = bytes
	rec.CRC32 = crc
	m.images[jobID] = rec
}

// setImage records a content-mode commit's metadata, keeping the
// ImageRecord generation in lockstep with the store's (the store is
// the source of truth for content jobs).
func (m *Manager) setImage(jobID string, rec ImageRecord) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.images[jobID] = rec
}

// sessionFor finds or creates the SessionLog for a hello: a resuming
// process reattaches to its existing log so retries, fallbacks, and
// torn frames accumulate on one per-job record.
func (m *Manager) sessionFor(h Hello, a Assign) (log *SessionLog, resumed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if h.Resume {
		if l, ok := m.byJob[h.JobID]; ok {
			return l, true
		}
	}
	l := &SessionLog{
		JobID:           h.JobID,
		Model:           a.Model,
		Params:          a.Params,
		CheckpointBytes: a.CheckpointBytes,
		traceID:         uint64(len(m.sessions)) + 1,
	}
	m.sessions = append(m.sessions, l)
	m.byJob[h.JobID] = l
	m.metrics.sessions.Inc()
	return l, false
}

// serve runs the manager side of one session. An I/O error is
// interpreted as the process being evicted (the paper's
// terminate-on-eviction semantics make a dropped connection the normal
// end of a session); the process may later reconnect with
// Hello.Resume and continue against its last good image.
func (m *Manager) serve(conn net.Conn) {
	rw := &deadlineRW{
		conn:         conn,
		ReadTimeout:  m.opts.HelloTimeout,
		WriteTimeout: m.opts.WriteTimeout,
	}
	var hello Hello
	t, err := ReadFrame(rw, &hello)
	if err != nil || t != MsgHello {
		return
	}
	assign, err := m.assigner.Assign(hello)
	if err != nil {
		return
	}
	if assign.HeartbeatSec <= 0 {
		assign.HeartbeatSec = 10
	}
	// Per-frame deadline from the announced heartbeat cadence: a live
	// process produces a frame at least every heartbeat period.
	rw.ReadTimeout = frameTimeout(assign.HeartbeatSec, hello.TimeScale,
		m.opts.HeartbeatGrace, m.opts.MinFrameTimeout, m.opts.IdleTimeout)

	log, resumed := m.sessionFor(hello, assign)
	m.metrics.active.Add(1)
	defer m.metrics.active.Add(-1)

	// Trace lane for this connection: pid is the session's creation
	// order (stable across resumes), tid the 1-based attempt, so a
	// retried session renders as stacked attempt rows under one pid.
	tr := m.opts.Tracer
	pid, tid := log.traceID, uint64(hello.Attempt)+1
	sess := tr.StartSpan(pid, tid, "session").SetAttr(
		obs.AttrStr("job", hello.JobID),
		obs.AttrStr("model", assign.Model.String()),
		obs.AttrBool("resumed", resumed))
	defer sess.End()

	if resumed {
		seq := m.record(log, EvRetry, float64(hello.Attempt))
		tr.Event(pid, tid, "retry",
			obs.AttrInt("seq", seq), obs.AttrInt("attempt", int64(hello.Attempt)))
	} else {
		sess.SetAttr(obs.AttrInt("seq", m.record(log, EvConnected, hello.TElapsed)))
	}
	defer m.record(log, EvDisconnected, 0)

	if err := WriteFrame(rw, MsgAssign, assign); err != nil {
		return
	}

	// Recovery: stream the last good image (or a fresh image of the
	// assigned size for a first-time job). A write error means the
	// process was evicted mid-recovery; TCP cannot tell us precisely
	// how many bytes arrived, so the manager records the attempt with
	// an unknown (zero) byte count and relies on its own timing
	// elsewhere.
	recBegin := DataBegin{Bytes: assign.CheckpointBytes, CRC32: ZeroCRC(assign.CheckpointBytes)}
	var recData []byte
	if data, _, gen, crc, ok := m.store.Lookup(hello.JobID); ok && gen > 0 {
		// Content job: stream the committed image itself and announce
		// its generation so the client re-adopts it as a delta base.
		recData = data
		recBegin = DataBegin{Bytes: int64(len(data)), CRC32: crc, Mode: ModeFull, Gen: gen}
	} else if rec, ok := m.Image(hello.JobID); ok {
		recBegin.Bytes, recBegin.CRC32 = rec.Bytes, rec.CRC32
	}
	if err := WriteFrame(rw, MsgRecoveryBegin, recBegin); err != nil {
		return
	}
	rsp := tr.StartSpan(pid, tid, "transfer.recovery").SetAttr(
		obs.AttrInt("bytes", recBegin.Bytes),
		obs.AttrStr("mode", recBegin.Mode))
	if recData != nil {
		err = WriteRawData(rw, recData)
	} else {
		err = WriteData(rw, recBegin.Bytes)
	}
	if err != nil {
		seq := m.record(log, EvRecoveryInterrupted, 0)
		rsp.SetAttr(obs.AttrStr("outcome", "interrupted"), obs.AttrInt("seq", seq)).End()
		return
	}
	recWire := 0.0
	if recData != nil {
		recWire = float64(recBegin.Bytes)
	}
	rsp.SetAttr(obs.AttrStr("outcome", "done"),
		obs.AttrInt("seq", m.record(log, EvRecoveryDone, recWire))).End()

	// Event loop: heartbeats, T_opt reports, checkpoints — until the
	// connection drops (eviction) or the stream turns to garbage.
	// hbExpect is the expected wall-clock heartbeat cadence; a gap
	// beyond 1.5× of it earns a "heartbeat.gap" trace event.
	hbExpect := assign.HeartbeatSec
	if hello.TimeScale > 0 {
		hbExpect *= hello.TimeScale
	}
	var lastHB time.Time
	for {
		var raw struct {
			Topt      float64 `json:"topt"`
			MeasuredC float64 `json:"measured_c"`
			Age       float64 `json:"age"`
			Elapsed   float64 `json:"elapsed"`
			Bytes     int64   `json:"bytes"`
			CRC32     uint32  `json:"crc32"`
			Fallback  bool    `json:"fallback"`
			// Delta-checkpoint extension (DataBegin's optional fields).
			Mode       string                `json:"mode"`
			Encoding   string                `json:"encoding"`
			RawBytes   int64                 `json:"raw_bytes"`
			ChunkSize  int                   `json:"chunk_size"`
			ImageBytes int64                 `json:"image_bytes"`
			BaseGen    int                   `json:"base_gen"`
			Dirty      []int                 `json:"dirty"`
			Sums       []imagestore.ChunkSum `json:"sums"`
		}
		t, err := ReadFrame(rw, &raw)
		if err != nil {
			if errors.Is(err, ErrMalformedFrame) {
				tr.Event(pid, tid, "torn_frame",
					obs.AttrInt("seq", m.record(log, EvTornFrame, 0)),
					obs.AttrStr("cause", "malformed"))
			}
			return
		}
		switch t {
		case MsgTopt:
			seq := m.record(log, EvTopt, raw.Topt)
			tr.Event(pid, tid, "topt",
				obs.AttrInt("seq", seq),
				obs.AttrFloat("t_opt", raw.Topt),
				obs.AttrBool("fallback", raw.Fallback))
			if raw.Fallback {
				tr.Event(pid, tid, "fallback",
					obs.AttrInt("seq", m.record(log, EvFallback, raw.Topt)),
					obs.AttrFloat("t_opt", raw.Topt))
			}
		case MsgHeartbeat:
			var gap float64
			if m.metrics.hbGap != nil || tr != nil {
				now := time.Now()
				if !lastHB.IsZero() {
					gap = now.Sub(lastHB).Seconds()
					m.metrics.hbGap.Observe(gap)
				}
				lastHB = now
			}
			seq := m.record(log, EvHeartbeat, raw.Elapsed)
			tr.Event(pid, tid, "heartbeat",
				obs.AttrInt("seq", seq),
				obs.AttrFloat("gap_s", gap),
				obs.AttrFloat("elapsed", raw.Elapsed))
			if hbExpect > 0 && gap > 1.5*hbExpect {
				tr.Event(pid, tid, "heartbeat.gap",
					obs.AttrInt("seq", seq),
					obs.AttrFloat("gap_s", gap),
					obs.AttrFloat("expected_s", hbExpect))
			}
		case MsgCheckpointBegin:
			csp := tr.StartSpan(pid, tid, "transfer.checkpoint").SetAttr(
				obs.AttrInt("bytes", raw.Bytes),
				obs.AttrStr("mode", raw.Mode))
			// Content modes must buffer the stream to verify and commit
			// it; the legacy zero stream is discarded as it arrives.
			var (
				payload []byte
				got     int64
				crc     uint32
			)
			if raw.Mode == ModeLegacy {
				got, crc, err = ReadDataCRC(rw, raw.Bytes)
			} else {
				payload, got, crc, err = ReadDataBuf(rw, raw.Bytes)
			}
			if err != nil {
				if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
					csp.SetAttr(obs.AttrStr("outcome", "interrupted"),
						obs.AttrInt("seq", m.record(log, EvCheckpointInterrupted, float64(got))),
						obs.AttrInt("got", got)).End()
				} else {
					csp.SetAttr(obs.AttrStr("outcome", "error")).End()
				}
				return
			}
			if raw.CRC32 != 0 && crc != raw.CRC32 {
				// Corrupt image: reject it, keep the last good one, and
				// tell the process so it can retry over this connection
				// (the stream is still frame-aligned — we consumed
				// exactly the announced byte count).
				seq := m.record(log, EvTornFrame, float64(got))
				csp.SetAttr(obs.AttrStr("outcome", "crc_rejected"),
					obs.AttrInt("seq", seq)).End()
				tr.Event(pid, tid, "torn_frame",
					obs.AttrInt("seq", seq), obs.AttrStr("cause", "crc"))
				if err := WriteFrame(rw, MsgCheckpointNack, struct{}{}); err != nil {
					return
				}
				continue
			}
			switch raw.Mode {
			case ModeLegacy:
				m.commitImage(hello.JobID, raw.Bytes, crc)
				csp.SetAttr(obs.AttrStr("outcome", "committed"),
					obs.AttrInt("seq", m.record(log, EvCheckpointDone, 0))).End()
				rec, _ := m.Image(hello.JobID)
				if err := WriteFrame(rw, MsgCheckpointAck, CheckpointAck{Gen: rec.Generation}); err != nil {
					return
				}
			case ModeFull, ModeDelta:
				gen, size, cerr := m.commitContent(hello.JobID, raw.Mode, raw.Encoding,
					raw.RawBytes, raw.ImageBytes, raw.BaseGen, raw.ChunkSize, raw.Dirty, raw.Sums, payload)
				if cerr != nil {
					// The stream arrived intact but the patch doesn't
					// apply (stale base, bad geometry, failed chunk
					// verification) or the encoding is broken. The stream
					// is frame-aligned — exactly Bytes were consumed — so
					// Nack and let the client retry, typically as a full
					// image.
					seq := m.record(log, EvTornFrame, float64(got))
					csp.SetAttr(obs.AttrStr("outcome", "delta_rejected"),
						obs.AttrInt("seq", seq)).End()
					tr.Event(pid, tid, "torn_frame",
						obs.AttrInt("seq", seq), obs.AttrStr("cause", "delta"),
						obs.AttrStr("error", cerr.Error()))
					if err := WriteFrame(rw, MsgCheckpointNack, struct{}{}); err != nil {
						return
					}
					continue
				}
				kind, val := EvCheckpointDone, float64(raw.Bytes)
				if raw.Mode == ModeDelta {
					kind, val = EvDeltaCheckpointDone, float64(raw.Bytes)
				}
				csp.SetAttr(obs.AttrStr("outcome", "committed"),
					obs.AttrInt("gen", int64(gen)),
					obs.AttrInt("image_bytes", size),
					obs.AttrInt("seq", m.record(log, kind, val))).End()
				if err := WriteFrame(rw, MsgCheckpointAck, CheckpointAck{Gen: gen}); err != nil {
					return
				}
			default:
				// Unknown mode: refuse rather than commit garbage; the
				// stream stays aligned.
				seq := m.record(log, EvTornFrame, float64(got))
				csp.SetAttr(obs.AttrStr("outcome", "bad_mode"),
					obs.AttrInt("seq", seq)).End()
				tr.Event(pid, tid, "torn_frame",
					obs.AttrInt("seq", seq), obs.AttrStr("cause", "mode"))
				if err := WriteFrame(rw, MsgCheckpointNack, struct{}{}); err != nil {
					return
				}
			}
		default:
			// Unknown frame type: the stream lost alignment (a dropped
			// control frame left raw data where a header should be).
			tr.Event(pid, tid, "torn_frame",
				obs.AttrInt("seq", m.record(log, EvTornFrame, 0)),
				obs.AttrStr("cause", "unknown-frame"))
			return
		}
	}
}

// commitContent commits a verified content-mode checkpoint stream:
// decode the payload (inflating when the client announced an encoding),
// then commit it to the store as a full image or apply it as a delta
// patch. The returned size is the committed image length. Any error
// leaves the last good image untouched and maps to a Nack in serve.
func (m *Manager) commitContent(jobID, mode, encoding string, rawBytes, imageBytes int64,
	baseGen, chunkSize int, dirty []int, sums []imagestore.ChunkSum, payload []byte) (gen int, size int64, err error) {
	data := payload
	switch encoding {
	case "":
		if rawBytes != 0 && rawBytes != int64(len(payload)) {
			return 0, 0, fmt.Errorf("ckptnet: raw_bytes %d but %d payload bytes arrived", rawBytes, len(payload))
		}
	case "flate":
		if rawBytes < 0 || rawBytes > MaxImageBytes {
			return 0, 0, fmt.Errorf("ckptnet: inflated size %d out of range", rawBytes)
		}
		if data, err = imagestore.Decompress(payload, rawBytes); err != nil {
			return 0, 0, err
		}
	default:
		return 0, 0, fmt.Errorf("ckptnet: unknown encoding %q", encoding)
	}
	if chunkSize <= 0 {
		chunkSize = imagestore.DefaultChunkSize
	}
	switch mode {
	case ModeFull:
		g, _, icrc := m.store.CommitFull(jobID, data, chunkSize)
		m.setImage(jobID, ImageRecord{Generation: g, Bytes: int64(len(data)), CRC32: icrc})
		return g, int64(len(data)), nil
	case ModeDelta:
		d := imagestore.Delta{BaseGen: baseGen, ChunkSize: chunkSize, Size: imageBytes, Dirty: dirty, Sums: sums}
		g, icrc, derr := m.store.ApplyDelta(jobID, d, data)
		if derr != nil {
			return 0, 0, derr
		}
		m.setImage(jobID, ImageRecord{Generation: g, Bytes: imageBytes, CRC32: icrc})
		return g, imageBytes, nil
	}
	return 0, 0, fmt.Errorf("ckptnet: unknown transfer mode %q", mode)
}

// String describes the manager for logs.
func (m *Manager) String() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	addr := "unbound"
	if m.listener != nil {
		addr = m.listener.Addr().String()
	}
	return fmt.Sprintf("ckptnet.Manager(%s, %d sessions)", addr, len(m.sessions))
}
