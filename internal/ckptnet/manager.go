package ckptnet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"github.com/cycleharvest/ckptsched/internal/fit"
)

// Assigner decides which availability model a connecting test process
// should use — the manager-side policy. The paper's manager rotates
// among the four families and parameterizes each from the 18-month
// trace archive of the host the process landed on.
type Assigner interface {
	Assign(h Hello) (Assign, error)
}

// AssignerFunc adapts a function to the Assigner interface.
type AssignerFunc func(h Hello) (Assign, error)

// Assign implements Assigner.
func (f AssignerFunc) Assign(h Hello) (Assign, error) { return f(h) }

// StaticAssigner always assigns the same model and parameters.
func StaticAssigner(m fit.Model, params []float64, bytes int64) Assigner {
	return AssignerFunc(func(Hello) (Assign, error) {
		return Assign{Model: m, Params: params, CheckpointBytes: bytes, HeartbeatSec: 10}, nil
	})
}

// Manager is the checkpoint manager: a TCP server that serves recovery
// images, receives checkpoints, and logs every session event.
type Manager struct {
	assigner Assigner

	mu       sync.Mutex
	listener net.Listener
	sessions []*SessionLog
	wg       sync.WaitGroup
	closed   bool
}

// NewManager creates a manager with the given assignment policy.
func NewManager(a Assigner) (*Manager, error) {
	if a == nil {
		return nil, errors.New("ckptnet: nil assigner")
	}
	return &Manager{assigner: a}, nil
}

// Listen starts accepting test-process connections on addr (e.g.
// "127.0.0.1:0") and returns the bound address.
func (m *Manager) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.listener = ln
	m.mu.Unlock()
	m.wg.Add(1)
	go m.acceptLoop(ln)
	return ln.Addr(), nil
}

func (m *Manager) acceptLoop(ln net.Listener) {
	defer m.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			defer conn.Close()
			m.serve(conn)
		}()
	}
}

// Close stops the listener and waits for in-flight sessions.
func (m *Manager) Close() error {
	m.mu.Lock()
	ln := m.listener
	m.closed = true
	m.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	m.wg.Wait()
	return err
}

// Sessions returns the logs of all sessions seen so far (live and
// finished).
func (m *Manager) Sessions() []*SessionLog {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*SessionLog, len(m.sessions))
	copy(out, m.sessions)
	return out
}

// serve runs the manager side of one session. Any I/O error is
// interpreted as the process being evicted (the paper's
// terminate-on-eviction semantics make a dropped connection the normal
// end of a session).
func (m *Manager) serve(conn net.Conn) {
	var hello Hello
	t, err := ReadFrame(conn, &hello)
	if err != nil || t != MsgHello {
		return
	}
	assign, err := m.assigner.Assign(hello)
	if err != nil {
		return
	}
	if assign.HeartbeatSec <= 0 {
		assign.HeartbeatSec = 10
	}

	log := &SessionLog{
		JobID:           hello.JobID,
		Model:           assign.Model,
		Params:          assign.Params,
		CheckpointBytes: assign.CheckpointBytes,
	}
	m.mu.Lock()
	m.sessions = append(m.sessions, log)
	m.mu.Unlock()
	log.Add(EvConnected, hello.TElapsed)
	defer log.Add(EvDisconnected, 0)

	if err := WriteFrame(conn, MsgAssign, assign); err != nil {
		return
	}

	// Initial recovery: stream the image to the process. A write
	// error means the process was evicted mid-recovery; TCP cannot
	// tell us precisely how many bytes arrived, so the manager records
	// the attempt with an unknown (zero) byte count and relies on
	// its own timing elsewhere.
	if err := WriteFrame(conn, MsgRecoveryBegin, DataBegin{Bytes: assign.CheckpointBytes}); err != nil {
		return
	}
	if err := WriteData(conn, assign.CheckpointBytes); err != nil {
		log.Add(EvRecoveryInterrupted, 0)
		return
	}
	log.Add(EvRecoveryDone, 0)

	// Event loop: heartbeats, T_opt reports, checkpoints — until the
	// connection drops (eviction).
	for {
		var raw struct {
			Topt      float64 `json:"topt"`
			MeasuredC float64 `json:"measured_c"`
			Age       float64 `json:"age"`
			Elapsed   float64 `json:"elapsed"`
			Bytes     int64   `json:"bytes"`
		}
		t, err := ReadFrame(conn, &raw)
		if err != nil {
			return
		}
		switch t {
		case MsgTopt:
			log.Add(EvTopt, raw.Topt)
		case MsgHeartbeat:
			log.Add(EvHeartbeat, raw.Elapsed)
		case MsgCheckpointBegin:
			got, err := ReadData(conn, raw.Bytes)
			if err != nil {
				if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
					log.Add(EvCheckpointInterrupted, float64(got))
					return
				}
				return
			}
			log.Add(EvCheckpointDone, 0)
			if err := WriteFrame(conn, MsgCheckpointAck, struct{}{}); err != nil {
				return
			}
		default:
			// Protocol violation; drop the session.
			return
		}
	}
}

// String describes the manager for logs.
func (m *Manager) String() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	addr := "unbound"
	if m.listener != nil {
		addr = m.listener.Addr().String()
	}
	return fmt.Sprintf("ckptnet.Manager(%s, %d sessions)", addr, len(m.sessions))
}
