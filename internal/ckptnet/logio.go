package ckptnet

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/cycleharvest/ckptsched/internal/fit"
)

// sessionDTO is the JSON-lines wire form of a SessionLog (the type
// itself carries a mutex and stays unexported from encoding).
type sessionDTO struct {
	JobID           string     `json:"job_id"`
	Model           string     `json:"model"`
	Params          []float64  `json:"params"`
	CheckpointBytes int64      `json:"checkpoint_bytes"`
	Events          []eventDTO `json:"events"`
}

type eventDTO struct {
	// Seq is omitted from logs written before sequence ids existed;
	// ReadSessions synthesizes positional ids for those.
	Seq   int64     `json:"seq,omitempty"`
	Wall  time.Time `json:"wall"`
	Kind  string    `json:"kind"`
	Value float64   `json:"value"`
}

// kindValues inverts EventKind.String for parsing.
var kindValues = func() map[string]EventKind {
	m := make(map[string]EventKind)
	for k := EvConnected; k < evKindEnd; k++ {
		m[k.String()] = k
	}
	return m
}()

// WriteSessions writes session logs as JSON lines (one session per
// line), the manager's durable log format.
func WriteSessions(w io.Writer, sessions []*SessionLog) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range sessions {
		s.mu.Lock()
		dto := sessionDTO{
			JobID:           s.JobID,
			Model:           s.Model.String(),
			Params:          s.Params,
			CheckpointBytes: s.CheckpointBytes,
		}
		for _, e := range s.Events {
			dto.Events = append(dto.Events, eventDTO{Seq: e.Seq, Wall: e.Wall, Kind: e.Kind.String(), Value: e.Value})
		}
		s.mu.Unlock()
		if err := enc.Encode(dto); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSessions parses a JSON-lines session log written by
// WriteSessions.
func ReadSessions(r io.Reader) ([]*SessionLog, error) {
	dec := json.NewDecoder(r)
	var out []*SessionLog
	for {
		var dto sessionDTO
		if err := dec.Decode(&dto); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("ckptnet: session log: %w", err)
		}
		model, err := fit.ParseModel(dto.Model)
		if err != nil {
			return nil, fmt.Errorf("ckptnet: session %q: %w", dto.JobID, err)
		}
		s := &SessionLog{
			JobID:           dto.JobID,
			Model:           model,
			Params:          dto.Params,
			CheckpointBytes: dto.CheckpointBytes,
		}
		for i, e := range dto.Events {
			kind, ok := kindValues[e.Kind]
			if !ok {
				return nil, fmt.Errorf("ckptnet: session %q: unknown event kind %q", dto.JobID, e.Kind)
			}
			seq := e.Seq
			if seq == 0 {
				// Legacy log without sequence ids: positional order is the
				// only ordering the old format guaranteed, so reuse it.
				seq = int64(i) + 1
			}
			s.Events = append(s.Events, LogEvent{Seq: seq, Wall: e.Wall, Kind: kind, Value: e.Value})
		}
		out = append(out, s)
	}
	return out, nil
}

// WallSeconds returns the wall-clock span of the session from first to
// last event (0 for fewer than two events).
func (l *SessionLog) WallSeconds() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.Events) < 2 {
		return 0
	}
	return l.Events[len(l.Events)-1].Wall.Sub(l.Events[0].Wall).Seconds()
}
