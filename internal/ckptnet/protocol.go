package ckptnet

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"github.com/cycleharvest/ckptsched/internal/fit"
)

// MsgType tags a protocol frame.
type MsgType byte

// Protocol frame types. Control frames carry a JSON payload; the
// recovery and checkpoint frames are followed by exactly Bytes raw
// data bytes on the wire.
const (
	MsgHello           MsgType = 1 // process → manager: introduce job
	MsgAssign          MsgType = 2 // manager → process: model + parameters
	MsgRecoveryBegin   MsgType = 3 // manager → process: raw data follows
	MsgTopt            MsgType = 4 // process → manager: interval report
	MsgHeartbeat       MsgType = 5 // process → manager: cumulative runtime
	MsgCheckpointBegin MsgType = 6 // process → manager: raw data follows
	MsgCheckpointAck   MsgType = 7 // manager → process: checkpoint stored
	MsgCheckpointNack  MsgType = 8 // manager → process: checkpoint rejected (torn/corrupt), retry
)

// maxFrame bounds control-frame payloads (data streams are unbounded
// and framed by their announced byte counts instead).
const maxFrame = 1 << 20

// Hello introduces a test process to the manager.
type Hello struct {
	JobID string `json:"job_id"`
	// TElapsed is how long the hosting resource had been available
	// when the process started, in seconds (0 when unknown).
	TElapsed float64 `json:"t_elapsed"`
	// TimeScale is the process's wall-seconds-per-virtual-second
	// compression (0 when unannounced). The manager derives its
	// per-frame read deadlines from HeartbeatSec × TimeScale: under
	// compression a heartbeat arrives every few milliseconds and the
	// deadline shrinks to match.
	TimeScale float64 `json:"time_scale,omitempty"`
	// Resume marks a reconnection after a transport failure: the
	// manager reattaches the process to its existing session log and
	// serves recovery from the last good checkpoint image.
	Resume bool `json:"resume,omitempty"`
	// Attempt is the 0-based session attempt number (logged as the
	// EvRetry value on resume).
	Attempt int `json:"attempt,omitempty"`
}

// Assign tells the process which availability model to schedule with
// (the manager fits models centrally from its trace archive).
type Assign struct {
	Model  fit.Model `json:"model"`
	Params []float64 `json:"params"`
	// CheckpointBytes is the image size to transfer each way.
	CheckpointBytes int64 `json:"checkpoint_bytes"`
	// HeartbeatSec is the heartbeat period (the paper uses 10 s).
	HeartbeatSec float64 `json:"heartbeat_sec"`
}

// DataBegin announces a raw transfer of Bytes bytes immediately
// following the frame (used by MsgRecoveryBegin and
// MsgCheckpointBegin).
type DataBegin struct {
	Bytes int64 `json:"bytes"`
	// CRC32 is the IEEE checksum of the data stream (0 = unverified,
	// the pre-resilience wire format). The receiver verifies it before
	// committing a checkpoint, so a corrupted transfer is rejected
	// instead of replacing the last good image.
	CRC32 uint32 `json:"crc32,omitempty"`
}

// ToptReport is the process's per-interval log record: the interval it
// computed, the transfer time it measured, and the resource age used.
type ToptReport struct {
	Topt       float64 `json:"topt"`
	MeasuredC  float64 `json:"measured_c"`
	Age        float64 `json:"age"`
	Efficiency float64 `json:"efficiency"`
	// Fallback marks an interval scheduled without a fresh T_opt
	// solution — the process reused its last assigned schedule (or the
	// conservative default) because recomputation failed or the
	// session had just been resumed after a transport failure.
	Fallback bool `json:"fallback,omitempty"`
}

// Heartbeat carries the cumulative seconds since the process began.
type Heartbeat struct {
	Elapsed float64 `json:"elapsed"`
}

// WriteFrame writes one control frame as a single Write call, so a
// frame either reaches the transport whole or not at all (the property
// the fault injector's frame-level drops rely on).
func WriteFrame(w io.Writer, t MsgType, payload any) error {
	body, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("ckptnet: marshal %d: %w", t, err)
	}
	if len(body) > maxFrame {
		return fmt.Errorf("ckptnet: frame too large: %d", len(body))
	}
	frame := make([]byte, 5+len(body))
	frame[0] = byte(t)
	binary.BigEndian.PutUint32(frame[1:5], uint32(len(body)))
	copy(frame[5:], body)
	_, err = w.Write(frame)
	return err
}

// ErrMalformedFrame tags frames that arrived but could not be parsed —
// an oversized length, an undecodable payload, or a stream that lost
// frame alignment. Receivers treat it as a torn frame (the peer or the
// network mangled the stream) rather than a clean disconnect.
var ErrMalformedFrame = errors.New("ckptnet: malformed frame")

// ReadFrame reads one control frame and unmarshals its payload into
// out (pass nil to discard).
func ReadFrame(r io.Reader, out any) (MsgType, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return 0, fmt.Errorf("ckptnet: oversized frame %d: %w", n, ErrMalformedFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, err
	}
	t := MsgType(hdr[0])
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			return t, fmt.Errorf("ckptnet: unmarshal frame %d: %v: %w", t, err, ErrMalformedFrame)
		}
	}
	return t, nil
}

// ErrUnexpectedFrame is returned when a peer violates the protocol
// state machine.
var ErrUnexpectedFrame = errors.New("ckptnet: unexpected frame")

// chunkSize is the unit in which raw data streams are written.
const chunkSize = 64 << 10

// WriteData streams n pseudo-payload bytes to w. The content is
// irrelevant (the paper transfers memory images; we transfer zeroed
// buffers), only the byte count matters to timing.
func WriteData(w io.Writer, n int64) error {
	buf := make([]byte, chunkSize)
	for n > 0 {
		c := int64(len(buf))
		if c > n {
			c = n
		}
		if _, err := w.Write(buf[:c]); err != nil {
			return err
		}
		n -= c
	}
	return nil
}

// ReadData consumes exactly n raw bytes from r, returning the number
// actually read (short on error — the partial-transfer measurement the
// manager records when a process is evicted mid-checkpoint).
func ReadData(r io.Reader, n int64) (int64, error) {
	got, _, err := ReadDataCRC(r, n)
	return got, err
}

// ReadDataCRC consumes exactly n raw bytes from r while computing the
// IEEE CRC32 of the stream, so the receiver can verify integrity
// against the checksum announced in DataBegin before committing.
func ReadDataCRC(r io.Reader, n int64) (got int64, crc uint32, err error) {
	buf := make([]byte, chunkSize)
	for got < n {
		c := int64(len(buf))
		if c > n-got {
			c = n - got
		}
		k, err := io.ReadFull(r, buf[:c])
		crc = crc32.Update(crc, crc32.IEEETable, buf[:k])
		got += int64(k)
		if err != nil {
			return got, crc, err
		}
	}
	return got, crc, nil
}

// zeroCRCCache memoizes ZeroCRC by size; transfers repeat the same
// image size for a whole campaign.
var zeroCRCCache sync.Map // int64 → uint32

// ZeroCRC returns the IEEE CRC32 of n zero bytes — the checksum of the
// pseudo-payload WriteData streams, announced in DataBegin so the
// receiver can detect in-flight corruption.
func ZeroCRC(n int64) uint32 {
	if v, ok := zeroCRCCache.Load(n); ok {
		return v.(uint32)
	}
	buf := make([]byte, chunkSize)
	var crc uint32
	for left := n; left > 0; {
		c := int64(len(buf))
		if c > left {
			c = left
		}
		crc = crc32.Update(crc, crc32.IEEETable, buf[:c])
		left -= c
	}
	zeroCRCCache.Store(n, crc)
	return crc
}
