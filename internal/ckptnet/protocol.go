package ckptnet

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"github.com/cycleharvest/ckptsched/internal/fit"
	"github.com/cycleharvest/ckptsched/internal/imagestore"
)

// MsgType tags a protocol frame.
type MsgType byte

// Protocol frame types. Control frames carry a JSON payload; the
// recovery and checkpoint frames are followed by exactly Bytes raw
// data bytes on the wire.
const (
	MsgHello           MsgType = 1 // process → manager: introduce job
	MsgAssign          MsgType = 2 // manager → process: model + parameters
	MsgRecoveryBegin   MsgType = 3 // manager → process: raw data follows
	MsgTopt            MsgType = 4 // process → manager: interval report
	MsgHeartbeat       MsgType = 5 // process → manager: cumulative runtime
	MsgCheckpointBegin MsgType = 6 // process → manager: raw data follows
	MsgCheckpointAck   MsgType = 7 // manager → process: checkpoint stored
	MsgCheckpointNack  MsgType = 8 // manager → process: checkpoint rejected (torn/corrupt), retry
)

// maxFrame bounds control-frame payloads (data streams are unbounded
// and framed by their announced byte counts instead).
const maxFrame = 1 << 20

// Hello introduces a test process to the manager.
type Hello struct {
	JobID string `json:"job_id"`
	// TElapsed is how long the hosting resource had been available
	// when the process started, in seconds (0 when unknown).
	TElapsed float64 `json:"t_elapsed"`
	// TimeScale is the process's wall-seconds-per-virtual-second
	// compression (0 when unannounced). The manager derives its
	// per-frame read deadlines from HeartbeatSec × TimeScale: under
	// compression a heartbeat arrives every few milliseconds and the
	// deadline shrinks to match.
	TimeScale float64 `json:"time_scale,omitempty"`
	// Resume marks a reconnection after a transport failure: the
	// manager reattaches the process to its existing session log and
	// serves recovery from the last good checkpoint image.
	Resume bool `json:"resume,omitempty"`
	// Attempt is the 0-based session attempt number (logged as the
	// EvRetry value on resume).
	Attempt int `json:"attempt,omitempty"`
}

// Assign tells the process which availability model to schedule with
// (the manager fits models centrally from its trace archive).
type Assign struct {
	Model  fit.Model `json:"model"`
	Params []float64 `json:"params"`
	// CheckpointBytes is the image size to transfer each way.
	CheckpointBytes int64 `json:"checkpoint_bytes"`
	// HeartbeatSec is the heartbeat period (the paper uses 10 s).
	HeartbeatSec float64 `json:"heartbeat_sec"`
}

// Transfer modes a DataBegin can announce. The zero value is the
// legacy wire format: a zero-filled stream whose only meaningful
// property is its byte count.
const (
	// ModeLegacy streams Bytes zero bytes (pre-delta wire format).
	ModeLegacy = ""
	// ModeFull streams the actual image content, optionally compressed.
	ModeFull = "full"
	// ModeDelta streams only the dirty chunks of a content-addressed
	// delta against the previously committed generation (DESIGN.md §16).
	ModeDelta = "delta"
)

// DataBegin announces a raw transfer of Bytes bytes immediately
// following the frame (used by MsgRecoveryBegin and
// MsgCheckpointBegin).
//
// The delta-checkpoint extension rides in the optional fields: Mode
// selects the legacy zero-stream, a full content image, or a chunk
// delta; for content modes the stream carries real bytes (compressed
// when Encoding says so) and CRC32 still checksums exactly what is on
// the wire, so torn-transfer detection works identically in every
// mode — the receiver always consumes exactly Bytes bytes, keeping the
// frame stream aligned for a Nack.
type DataBegin struct {
	Bytes int64 `json:"bytes"`
	// CRC32 is the IEEE checksum of the data stream (0 = unverified,
	// the pre-resilience wire format). The receiver verifies it before
	// committing a checkpoint, so a corrupted transfer is rejected
	// instead of replacing the last good image.
	CRC32 uint32 `json:"crc32,omitempty"`

	// Mode is ModeLegacy, ModeFull, or ModeDelta.
	Mode string `json:"mode,omitempty"`
	// Encoding is "flate" when the stream is DEFLATE-compressed; empty
	// means raw. RawBytes is the decompressed payload length.
	Encoding string `json:"encoding,omitempty"`
	RawBytes int64  `json:"raw_bytes,omitempty"`
	// ChunkSize is the dedup granularity (content modes).
	ChunkSize int `json:"chunk_size,omitempty"`
	// ImageBytes is the full image size a delta reconstructs.
	ImageBytes int64 `json:"image_bytes,omitempty"`
	// BaseGen is the committed generation a delta patches.
	BaseGen int `json:"base_gen,omitempty"`
	// Dirty and Sums are the delta's patched chunk indices and their
	// content addresses (the per-chunk manifest the store verifies).
	Dirty []int                 `json:"dirty,omitempty"`
	Sums  []imagestore.ChunkSum `json:"sums,omitempty"`
	// Gen is the committed generation backing a recovery stream, so a
	// resuming client can re-adopt the image as its delta base.
	Gen int `json:"gen,omitempty"`
}

// CheckpointAck is the payload of MsgCheckpointAck: the generation the
// manager committed, which the client records as its next delta base.
// Legacy clients decode into nothing and ignore it.
type CheckpointAck struct {
	Gen int `json:"gen,omitempty"`
}

// ToptReport is the process's per-interval log record: the interval it
// computed, the transfer time it measured, and the resource age used.
type ToptReport struct {
	Topt       float64 `json:"topt"`
	MeasuredC  float64 `json:"measured_c"`
	Age        float64 `json:"age"`
	Efficiency float64 `json:"efficiency"`
	// Fallback marks an interval scheduled without a fresh T_opt
	// solution — the process reused its last assigned schedule (or the
	// conservative default) because recomputation failed or the
	// session had just been resumed after a transport failure.
	Fallback bool `json:"fallback,omitempty"`
}

// Heartbeat carries the cumulative seconds since the process began.
type Heartbeat struct {
	Elapsed float64 `json:"elapsed"`
}

// WriteFrame writes one control frame as a single Write call, so a
// frame either reaches the transport whole or not at all (the property
// the fault injector's frame-level drops rely on).
func WriteFrame(w io.Writer, t MsgType, payload any) error {
	body, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("ckptnet: marshal %d: %w", t, err)
	}
	if len(body) > maxFrame {
		return fmt.Errorf("ckptnet: frame too large: %d", len(body))
	}
	frame := make([]byte, 5+len(body))
	frame[0] = byte(t)
	binary.BigEndian.PutUint32(frame[1:5], uint32(len(body)))
	copy(frame[5:], body)
	_, err = w.Write(frame)
	return err
}

// ErrMalformedFrame tags frames that arrived but could not be parsed —
// an oversized length, an undecodable payload, or a stream that lost
// frame alignment. Receivers treat it as a torn frame (the peer or the
// network mangled the stream) rather than a clean disconnect.
var ErrMalformedFrame = errors.New("ckptnet: malformed frame")

// ReadFrame reads one control frame and unmarshals its payload into
// out (pass nil to discard).
func ReadFrame(r io.Reader, out any) (MsgType, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return 0, fmt.Errorf("ckptnet: oversized frame %d: %w", n, ErrMalformedFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, err
	}
	t := MsgType(hdr[0])
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			return t, fmt.Errorf("ckptnet: unmarshal frame %d: %v: %w", t, err, ErrMalformedFrame)
		}
	}
	return t, nil
}

// ErrUnexpectedFrame is returned when a peer violates the protocol
// state machine.
var ErrUnexpectedFrame = errors.New("ckptnet: unexpected frame")

// chunkSize is the unit in which raw data streams are written.
const chunkSize = 64 << 10

// WriteData streams n pseudo-payload bytes to w. The content is
// irrelevant (the paper transfers memory images; we transfer zeroed
// buffers), only the byte count matters to timing.
func WriteData(w io.Writer, n int64) error {
	buf := make([]byte, chunkSize)
	for n > 0 {
		c := int64(len(buf))
		if c > n {
			c = n
		}
		if _, err := w.Write(buf[:c]); err != nil {
			return err
		}
		n -= c
	}
	return nil
}

// WriteRawData streams real content bytes to w in chunkSize units, so
// each Write stays under the per-Write deadline and the fault
// injector's per-chunk rolls apply the same way they do to WriteData's
// zero stream.
func WriteRawData(w io.Writer, data []byte) error {
	for len(data) > 0 {
		c := chunkSize
		if c > len(data) {
			c = len(data)
		}
		if _, err := w.Write(data[:c]); err != nil {
			return err
		}
		data = data[c:]
	}
	return nil
}

// MaxImageBytes bounds a content-mode transfer the receiver is willing
// to buffer (content modes must hold the image in memory to verify and
// commit it; the legacy zero stream is unbounded because it is
// discarded as it arrives).
const MaxImageBytes = 1 << 30

// ReadDataBuf consumes exactly n raw bytes from r into a fresh buffer
// while computing the stream CRC — the content-mode counterpart of
// ReadDataCRC. got reports how many bytes actually arrived (short on
// error, for partial-transfer accounting).
func ReadDataBuf(r io.Reader, n int64) (buf []byte, got int64, crc uint32, err error) {
	if n < 0 || n > MaxImageBytes {
		return nil, 0, 0, fmt.Errorf("ckptnet: content transfer of %d bytes: %w", n, ErrMalformedFrame)
	}
	buf = make([]byte, n)
	for got < n {
		c := int64(chunkSize)
		if c > n-got {
			c = n - got
		}
		k, err := io.ReadFull(r, buf[got:got+c])
		crc = crc32.Update(crc, crc32.IEEETable, buf[got:got+int64(k)])
		got += int64(k)
		if err != nil {
			return buf[:got], got, crc, err
		}
	}
	return buf, got, crc, nil
}

// ReadData consumes exactly n raw bytes from r, returning the number
// actually read (short on error — the partial-transfer measurement the
// manager records when a process is evicted mid-checkpoint).
func ReadData(r io.Reader, n int64) (int64, error) {
	got, _, err := ReadDataCRC(r, n)
	return got, err
}

// ReadDataCRC consumes exactly n raw bytes from r while computing the
// IEEE CRC32 of the stream, so the receiver can verify integrity
// against the checksum announced in DataBegin before committing.
func ReadDataCRC(r io.Reader, n int64) (got int64, crc uint32, err error) {
	buf := make([]byte, chunkSize)
	for got < n {
		c := int64(len(buf))
		if c > n-got {
			c = n - got
		}
		k, err := io.ReadFull(r, buf[:c])
		crc = crc32.Update(crc, crc32.IEEETable, buf[:k])
		got += int64(k)
		if err != nil {
			return got, crc, err
		}
	}
	return got, crc, nil
}

// zeroCRCSlots sizes the ZeroCRC memo table. The table is
// direct-mapped and fixed-size: a campaign reuses a handful of image
// sizes, so collisions are rare, and when delta transfers make sizes
// vary per checkpoint the cache stays bounded instead of growing one
// sync.Map entry per distinct size forever.
const zeroCRCSlots = 512

// zeroCRCCache memoizes ZeroCRC by size in a fixed table. slot 0 is
// distinguishable because size 0 short-circuits before the table.
var zeroCRCCache struct {
	mu    sync.Mutex
	sizes [zeroCRCSlots]int64
	crcs  [zeroCRCSlots]uint32
}

// ZeroCRC returns the IEEE CRC32 of n zero bytes — the checksum of the
// pseudo-payload WriteData streams, announced in DataBegin so the
// receiver can detect in-flight corruption.
func ZeroCRC(n int64) uint32 {
	if n <= 0 {
		return 0
	}
	// Fibonacci-hash the size into a direct-mapped slot; a collision
	// just evicts (recompute on the next miss).
	slot := (uint64(n) * 0x9E3779B97F4A7C15) >> 55 % zeroCRCSlots
	zeroCRCCache.mu.Lock()
	if zeroCRCCache.sizes[slot] == n {
		crc := zeroCRCCache.crcs[slot]
		zeroCRCCache.mu.Unlock()
		return crc
	}
	zeroCRCCache.mu.Unlock()
	buf := make([]byte, chunkSize)
	var crc uint32
	for left := n; left > 0; {
		c := int64(len(buf))
		if c > left {
			c = left
		}
		crc = crc32.Update(crc, crc32.IEEETable, buf[:c])
		left -= c
	}
	zeroCRCCache.mu.Lock()
	zeroCRCCache.sizes[slot] = n
	zeroCRCCache.crcs[slot] = crc
	zeroCRCCache.mu.Unlock()
	return crc
}
