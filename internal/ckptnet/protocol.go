package ckptnet

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"github.com/cycleharvest/ckptsched/internal/fit"
)

// MsgType tags a protocol frame.
type MsgType byte

// Protocol frame types. Control frames carry a JSON payload; the
// recovery and checkpoint frames are followed by exactly Bytes raw
// data bytes on the wire.
const (
	MsgHello           MsgType = 1 // process → manager: introduce job
	MsgAssign          MsgType = 2 // manager → process: model + parameters
	MsgRecoveryBegin   MsgType = 3 // manager → process: raw data follows
	MsgTopt            MsgType = 4 // process → manager: interval report
	MsgHeartbeat       MsgType = 5 // process → manager: cumulative runtime
	MsgCheckpointBegin MsgType = 6 // process → manager: raw data follows
	MsgCheckpointAck   MsgType = 7 // manager → process: checkpoint stored
)

// maxFrame bounds control-frame payloads (data streams are unbounded
// and framed by their announced byte counts instead).
const maxFrame = 1 << 20

// Hello introduces a test process to the manager.
type Hello struct {
	JobID string `json:"job_id"`
	// TElapsed is how long the hosting resource had been available
	// when the process started, in seconds (0 when unknown).
	TElapsed float64 `json:"t_elapsed"`
}

// Assign tells the process which availability model to schedule with
// (the manager fits models centrally from its trace archive).
type Assign struct {
	Model  fit.Model `json:"model"`
	Params []float64 `json:"params"`
	// CheckpointBytes is the image size to transfer each way.
	CheckpointBytes int64 `json:"checkpoint_bytes"`
	// HeartbeatSec is the heartbeat period (the paper uses 10 s).
	HeartbeatSec float64 `json:"heartbeat_sec"`
}

// DataBegin announces a raw transfer of Bytes bytes immediately
// following the frame (used by MsgRecoveryBegin and
// MsgCheckpointBegin).
type DataBegin struct {
	Bytes int64 `json:"bytes"`
}

// ToptReport is the process's per-interval log record: the interval it
// computed, the transfer time it measured, and the resource age used.
type ToptReport struct {
	Topt       float64 `json:"topt"`
	MeasuredC  float64 `json:"measured_c"`
	Age        float64 `json:"age"`
	Efficiency float64 `json:"efficiency"`
}

// Heartbeat carries the cumulative seconds since the process began.
type Heartbeat struct {
	Elapsed float64 `json:"elapsed"`
}

// WriteFrame writes one control frame.
func WriteFrame(w io.Writer, t MsgType, payload any) error {
	body, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("ckptnet: marshal %d: %w", t, err)
	}
	if len(body) > maxFrame {
		return fmt.Errorf("ckptnet: frame too large: %d", len(body))
	}
	var hdr [5]byte
	hdr[0] = byte(t)
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// ReadFrame reads one control frame and unmarshals its payload into
// out (pass nil to discard).
func ReadFrame(r io.Reader, out any) (MsgType, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return 0, fmt.Errorf("ckptnet: oversized frame %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, err
	}
	t := MsgType(hdr[0])
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			return t, fmt.Errorf("ckptnet: unmarshal frame %d: %w", t, err)
		}
	}
	return t, nil
}

// ErrUnexpectedFrame is returned when a peer violates the protocol
// state machine.
var ErrUnexpectedFrame = errors.New("ckptnet: unexpected frame")

// chunkSize is the unit in which raw data streams are written.
const chunkSize = 64 << 10

// WriteData streams n pseudo-payload bytes to w. The content is
// irrelevant (the paper transfers memory images; we transfer zeroed
// buffers), only the byte count matters to timing.
func WriteData(w io.Writer, n int64) error {
	buf := make([]byte, chunkSize)
	for n > 0 {
		c := int64(len(buf))
		if c > n {
			c = n
		}
		if _, err := w.Write(buf[:c]); err != nil {
			return err
		}
		n -= c
	}
	return nil
}

// ReadData consumes exactly n raw bytes from r, returning the number
// actually read (short on error — the partial-transfer measurement the
// manager records when a process is evicted mid-checkpoint).
func ReadData(r io.Reader, n int64) (int64, error) {
	buf := make([]byte, chunkSize)
	var got int64
	for got < n {
		c := int64(len(buf))
		if c > n-got {
			c = n - got
		}
		k, err := io.ReadFull(r, buf[:c])
		got += int64(k)
		if err != nil {
			return got, err
		}
	}
	return got, nil
}
