package ckptnet

import (
	"context"
	"strings"
	"testing"

	"github.com/cycleharvest/ckptsched/internal/fit"
	"github.com/cycleharvest/ckptsched/internal/obs"
)

// TestManagerTracing runs one loopback session with a tracer attached
// and checks the timeline: a session span, recovery and checkpoint
// transfer child spans, heartbeat and topt events — each carrying the
// SessionLog sequence id it correlates with.
func TestManagerTracing(t *testing.T) {
	tr := obs.NewTracer(obs.TracerOptions{FullFidelity: true})
	mgr, err := NewManagerOpts(
		StaticAssigner(fit.ModelExponential, []float64{1.0 / 3600}, 64<<10),
		Options{Tracer: tr},
	)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := mgr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	if _, err := RunProcess(context.Background(), ProcessConfig{
		Addr:         addr.String(),
		JobID:        "trace-1",
		TimeScale:    1e-4,
		MaxIntervals: 2,
	}); err != nil {
		t.Fatal(err)
	}
	mgr.Close()

	evs := tr.Events()
	byName := map[string]int{}
	for _, e := range evs {
		byName[e.Name]++
	}
	for _, name := range []string{"session", "transfer.recovery", "transfer.checkpoint", "heartbeat", "topt"} {
		if byName[name] == 0 {
			t.Errorf("no %q events in trace (have %v)", name, byName)
		}
	}
	if byName["transfer.checkpoint"] < 2 {
		t.Errorf("want >=2 checkpoint spans, got %d", byName["transfer.checkpoint"])
	}

	// Every session span sits on the pid its SessionLog was created
	// with, and transfer spans carry seq attrs resolvable in that log.
	logs := mgr.Sessions()
	if len(logs) != 1 {
		t.Fatalf("got %d sessions, want 1", len(logs))
	}
	log := logs[0]
	if log.traceID == 0 {
		t.Fatal("session has no traceID")
	}
	attr := func(e obs.TraceEvent, key string) (any, bool) {
		for _, a := range e.Attrs {
			if a.Key == key {
				return a.Value(), true
			}
		}
		return nil, false
	}
	for _, e := range evs {
		if e.Pid != log.traceID {
			t.Errorf("event %q on pid %d, want %d", e.Name, e.Pid, log.traceID)
		}
		if !strings.HasPrefix(e.Name, "transfer.") {
			continue
		}
		v, ok := attr(e, "seq")
		if !ok {
			t.Errorf("%q span missing seq attr", e.Name)
			continue
		}
		seq, ok := v.(int64)
		if !ok {
			t.Errorf("%q seq attr is %T, want int64 (AttrInt must round-trip)", e.Name, v)
			continue
		}
		if seq < 1 || seq > int64(len(log.Events)) {
			t.Errorf("%q seq %d out of log range 1..%d", e.Name, seq, len(log.Events))
			continue
		}
		got := log.Events[seq-1]
		if got.Seq != seq {
			t.Errorf("log event at index %d has Seq %d", seq-1, got.Seq)
		}
		var wantKind EventKind
		switch outcome, _ := attr(e, "outcome"); outcome {
		case "done":
			wantKind = EvRecoveryDone
		case "committed":
			wantKind = EvCheckpointDone
		default:
			t.Errorf("%q span with unexpected outcome %v", e.Name, outcome)
			continue
		}
		if got.Kind != wantKind {
			t.Errorf("seq %d resolves to %v, want %v", seq, got.Kind, wantKind)
		}
	}
}

// TestSessionLogSeqMonotonic pins the per-session Seq contract.
func TestSessionLogSeqMonotonic(t *testing.T) {
	l := &SessionLog{JobID: "seq-1"}
	for i := 1; i <= 5; i++ {
		if got := l.Add(EvHeartbeat, float64(i)); got != int64(i) {
			t.Fatalf("Add #%d returned seq %d", i, got)
		}
	}
	for i, e := range l.Events {
		if e.Seq != int64(i)+1 {
			t.Errorf("Events[%d].Seq = %d, want %d", i, e.Seq, i+1)
		}
	}
}

// TestReadSessionsLegacySeq decodes a pre-Seq JSON log (no "seq"
// fields) and checks positional ids are synthesized; a modern log keeps
// its explicit ids.
func TestReadSessionsLegacySeq(t *testing.T) {
	legacy := `{"job_id":"old-1","model":"exponential","params":[0.001],"checkpoint_bytes":1024,` +
		`"events":[` +
		`{"wall":"2026-01-02T15:04:05Z","kind":"connected","value":0},` +
		`{"wall":"2026-01-02T15:04:06Z","kind":"heartbeat","value":10},` +
		`{"wall":"2026-01-02T15:04:06Z","kind":"heartbeat","value":20}]}` + "\n"
	logs, err := ReadSessions(strings.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	if len(logs) != 1 || len(logs[0].Events) != 3 {
		t.Fatalf("decoded %d sessions / %d events", len(logs), len(logs[0].Events))
	}
	for i, e := range logs[0].Events {
		if e.Seq != int64(i)+1 {
			t.Errorf("legacy Events[%d].Seq = %d, want %d", i, e.Seq, i+1)
		}
	}

	// Round trip through the modern writer: explicit ids survive.
	var buf strings.Builder
	if err := WriteSessions(&buf, logs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"seq":2`) {
		t.Errorf("modern encoding lacks seq ids: %s", buf.String())
	}
	again, err := ReadSessions(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range again[0].Events {
		if e.Seq != logs[0].Events[i].Seq {
			t.Errorf("round-trip Events[%d].Seq = %d, want %d", i, e.Seq, logs[0].Events[i].Seq)
		}
	}
}

// TestFaultInjectorTracing checks chaos injections land on the
// injector's pid-0 lane.
func TestFaultInjectorTracing(t *testing.T) {
	tr := obs.NewTracer(obs.TracerOptions{FullFidelity: true})
	fi := NewFaultInjector(FaultConfig{
		Seed:          7,
		DropOnceTypes: []MsgType{MsgHeartbeat},
		Tracer:        tr,
	})
	mgr, err := NewManagerOpts(
		StaticAssigner(fit.ModelExponential, []float64{1.0 / 3600}, 32<<10),
		Options{WrapConn: fi.Wrap},
	)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := mgr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	if _, err := RunProcess(context.Background(), ProcessConfig{
		Addr:         addr.String(),
		JobID:        "chaos-trace-1",
		TimeScale:    1e-4,
		MaxIntervals: 1,
		WrapConn:     fi.Wrap,
	}); err != nil {
		t.Fatal(err)
	}
	var drops int
	for _, e := range tr.Events() {
		if e.Name == "chaos.drop" {
			drops++
			if e.Pid != 0 {
				t.Errorf("chaos event on pid %d, want 0", e.Pid)
			}
		}
	}
	if drops != 1 {
		t.Errorf("got %d chaos.drop events, want 1", drops)
	}
}
