package ckptnet

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/cycleharvest/ckptsched/internal/fit"
)

func TestSessionLogRoundTrip(t *testing.T) {
	a := &SessionLog{
		JobID:           "desktop0001/1",
		Model:           fit.ModelHyperexp2,
		Params:          []float64{0.6, 0.4, 0.01, 0.0001},
		CheckpointBytes: 500 * MB,
	}
	a.Add(EvConnected, 300)
	a.Add(EvRecoveryDone, 0)
	a.Add(EvTopt, 1234)
	a.Add(EvHeartbeat, 10)
	a.Add(EvCheckpointDone, 0)
	a.Add(EvCheckpointInterrupted, 4096)
	a.Add(EvDisconnected, 0)
	b := &SessionLog{JobID: "desktop0002/2", Model: fit.ModelExponential, Params: []float64{0.001}}
	b.Add(EvConnected, 0)

	var buf bytes.Buffer
	if err := WriteSessions(&buf, []*SessionLog{a, b}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSessions(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("sessions = %d", len(got))
	}
	ga := got[0]
	if ga.JobID != a.JobID || ga.Model != a.Model || ga.CheckpointBytes != a.CheckpointBytes {
		t.Errorf("metadata lost: %+v", ga)
	}
	if len(ga.Params) != 4 || ga.Params[2] != 0.01 {
		t.Errorf("params lost: %v", ga.Params)
	}
	if len(ga.Events) != 7 || ga.Events[2].Kind != EvTopt || ga.Events[2].Value != 1234 {
		t.Errorf("events lost: %+v", ga.Events)
	}
	// Summaries agree across the round trip.
	if a.Summarize() != ga.Summarize() {
		t.Errorf("summary changed: %+v vs %+v", a.Summarize(), ga.Summarize())
	}
}

func TestReadSessionsErrors(t *testing.T) {
	if _, err := ReadSessions(strings.NewReader("{not json")); err == nil {
		t.Error("bad json should error")
	}
	if _, err := ReadSessions(strings.NewReader(`{"job_id":"x","model":"bogus"}` + "\n")); err == nil {
		t.Error("unknown model should error")
	}
	if _, err := ReadSessions(strings.NewReader(
		`{"job_id":"x","model":"weibull","events":[{"kind":"nope"}]}` + "\n")); err == nil {
		t.Error("unknown event kind should error")
	}
	// Empty input yields no sessions, no error.
	got, err := ReadSessions(strings.NewReader(""))
	if err != nil || len(got) != 0 {
		t.Errorf("empty input: %v, %d sessions", err, len(got))
	}
}

func TestWallSeconds(t *testing.T) {
	s := &SessionLog{}
	if s.WallSeconds() != 0 {
		t.Error("empty log should have zero wall time")
	}
	t0 := time.Now()
	s.Events = []LogEvent{
		{Wall: t0, Kind: EvConnected},
		{Wall: t0.Add(90 * time.Second), Kind: EvDisconnected},
	}
	if got := s.WallSeconds(); got != 90 {
		t.Errorf("wall = %g, want 90", got)
	}
}
