package imagestore

import "testing"

// BenchmarkChunkDedup measures the per-checkpoint manifest+diff cost on
// a 16 MB image with 10% of chunks dirty — the hot path every delta
// transfer pays before any byte hits the wire.
func BenchmarkChunkDedup(b *testing.B) {
	im := NewImage(16<<20, DefaultChunkSize, 1)
	prev := BuildManifest(im.Bytes(), DefaultChunkSize)
	im.MutateFraction(0.1)
	b.SetBytes(16 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur := BuildManifest(im.Bytes(), DefaultChunkSize)
		if dirty := Diff(prev, cur); len(dirty) == 0 {
			b.Fatal("expected dirty chunks")
		}
	}
}

// BenchmarkDeltaEncode measures full client-side delta encoding
// (manifest + diff + payload assembly) against a committed base.
func BenchmarkDeltaEncode(b *testing.B) {
	im := NewImage(16<<20, DefaultChunkSize, 2)
	im.CommitBase(1)
	im.MutateFraction(0.1)
	b.SetBytes(16 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, payload := im.EncodeDelta()
		if len(d.Dirty) == 0 || len(payload) == 0 {
			b.Fatal("expected non-empty delta")
		}
	}
}
