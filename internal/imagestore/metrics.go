package imagestore

import "github.com/cycleharvest/ckptsched/internal/obs"

// Metrics holds the image store's observability hooks. All fields are
// nil-safe obs counters, so the store runs at full speed with no
// registry attached (the internal/obs contract).
var Metrics struct {
	// ChunksHashed counts chunk addresses computed by BuildManifest.
	ChunksHashed *obs.Counter
	// ChunksDeduped counts chunks Diff matched against the committed
	// base — chunks that never crossed the wire.
	ChunksDeduped *obs.Counter
	// CompressSavedBytes accumulates payload bytes removed by the
	// DEFLATE pass (only transfers where compression actually won).
	CompressSavedBytes *obs.Counter
	// DeltaCommits counts successful delta applications.
	DeltaCommits *obs.Counter
	// DeltaBytes accumulates raw delta payload bytes committed.
	DeltaBytes *obs.Counter
	// FullCommits counts full-image commits.
	FullCommits *obs.Counter
	// FullBytes accumulates full-image bytes committed.
	FullBytes *obs.Counter
	// RejectedDeltas counts deltas the store refused: chunk verification
	// failures and base-coverage violations (base-generation mismatches
	// are counted by the manager as Nacks, not here).
	RejectedDeltas *obs.Counter
}

// Instrument points the package's metrics at r (DESIGN.md §16 lists
// the names). Call before transfers start, typically from main;
// Instrument(nil) turns instrumentation off.
func Instrument(r *obs.Registry) {
	Metrics.ChunksHashed = r.Counter("imagestore_chunks_hashed_total",
		"Chunk content addresses computed.")
	Metrics.ChunksDeduped = r.Counter("imagestore_chunks_deduped_total",
		"Chunks matched against the committed base (not transferred).")
	Metrics.CompressSavedBytes = r.Counter("imagestore_compress_saved_bytes_total",
		"Payload bytes removed by compression.")
	Metrics.DeltaCommits = r.Counter("imagestore_delta_commits_total",
		"Delta checkpoint images committed.")
	Metrics.DeltaBytes = r.Counter("imagestore_delta_bytes_total",
		"Raw delta payload bytes committed.")
	Metrics.FullCommits = r.Counter("imagestore_full_commits_total",
		"Full checkpoint images committed.")
	Metrics.FullBytes = r.Counter("imagestore_full_bytes_total",
		"Full checkpoint image bytes committed.")
	Metrics.RejectedDeltas = r.Counter("imagestore_rejected_deltas_total",
		"Deltas refused by verification (excludes base-generation Nacks).")
}
