package imagestore

import (
	"math"
	"math/rand"
)

// Image is the client half of the store: a mutable checkpoint image
// buffer plus the manifest of the last generation the server committed,
// which deltas are encoded against. Synthetic workloads drive it with
// MutateFraction (dirty a fraction of the chunks between checkpoints);
// the checkpoint client encodes with EncodeDelta, ships the result, and
// on Ack records the commit with CommitBase. Image is not safe for
// concurrent use; each session owns its own.
type Image struct {
	chunkSize int
	data      []byte
	baseMan   Manifest // manifest of the last committed generation
	baseGen   int      // 0 = nothing committed yet
	rng       *rand.Rand
}

// NewImage builds an image of the given size filled with deterministic
// pseudo-random (incompressible) content derived from seed. chunkSize
// ≤ 0 selects DefaultChunkSize.
func NewImage(size int64, chunkSize int, seed int64) *Image {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	im := &Image{
		chunkSize: chunkSize,
		data:      make([]byte, size),
		rng:       rand.New(rand.NewSource(seed)),
	}
	im.fill(im.data)
	return im
}

// fill overwrites b with bytes from the image's mutation stream.
func (im *Image) fill(b []byte) {
	// rand.Read on a seeded *rand.Rand is deterministic and never
	// returns an error.
	im.rng.Read(b)
}

// Bytes returns the image content. The slice aliases the image buffer;
// callers must not hold it across a Mutate or Adopt.
func (im *Image) Bytes() []byte { return im.data }

// Size returns the image length in bytes.
func (im *Image) Size() int64 { return int64(len(im.data)) }

// ChunkSize returns the chunk geometry.
func (im *Image) ChunkSize() int { return im.chunkSize }

// BaseGen returns the last committed generation (0 = none), the value
// a delta transfer announces as its base.
func (im *Image) BaseGen() int { return im.baseGen }

// HasBase reports whether the server has committed a generation of
// this image — the precondition for encoding a delta.
func (im *Image) HasBase() bool { return im.baseGen != 0 }

// MutateFraction dirties ceil(frac · chunks) distinct chunks with
// fresh pseudo-random bytes, emulating an application that touched that
// fraction of its state since the last checkpoint. frac ≤ 0 leaves the
// image untouched (the identical-image fast path); frac ≥ 1 rewrites
// every chunk. The dirty chunks are chosen uniformly without
// replacement from the image's seeded stream, so a given seed yields a
// reproducible mutation history.
func (im *Image) MutateFraction(frac float64) {
	n := NumChunks(im.Size(), im.chunkSize)
	if n == 0 || frac <= 0 {
		return
	}
	if frac > 1 {
		frac = 1
	}
	k := int(math.Ceil(frac * float64(n)))
	if k > n {
		k = n
	}
	for _, i := range im.rng.Perm(n)[:k] {
		lo, hi := chunkSpan(i, im.chunkSize, im.Size())
		im.fill(im.data[lo:hi])
	}
}

// DirtyFraction returns 1−exp(−rate·workSec): the expected dirty
// fraction of an image whose chunks are touched as a Poisson process at
// the given per-chunk rate while the application runs — the same curve
// the variable-cost model C(T) assumes (DESIGN.md §16).
func DirtyFraction(rate, workSec float64) float64 {
	if rate <= 0 || workSec <= 0 {
		return 0
	}
	return -math.Expm1(-rate * workSec)
}

// EncodeDelta diffs the current content against the committed base and
// returns the delta manifest plus its raw payload. It must not be
// called without a base (HasBase); the caller sends a full transfer
// instead in that case.
func (im *Image) EncodeDelta() (Delta, []byte) {
	cur := BuildManifest(im.data, im.chunkSize)
	dirty := Diff(im.baseMan, cur)
	d := Delta{
		BaseGen:   im.baseGen,
		ChunkSize: im.chunkSize,
		Size:      im.Size(),
		Dirty:     dirty,
		Sums:      make([]ChunkSum, len(dirty)),
	}
	for k, i := range dirty {
		d.Sums[k] = cur.Sums[i]
	}
	return d, DeltaPayload(im.data, im.chunkSize, dirty)
}

// CommitBase records that the server committed the current content as
// generation gen; subsequent deltas are diffed against it.
func (im *Image) CommitBase(gen int) {
	im.baseMan = BuildManifest(im.data, im.chunkSize)
	im.baseGen = gen
}

// ResetBase forgets the committed base (e.g. after the server lost the
// image), forcing the next transfer to go full.
func (im *Image) ResetBase() {
	im.baseMan = Manifest{}
	im.baseGen = 0
}

// Adopt replaces the image content wholesale with data fetched from
// the server during recovery, committed there as generation gen. The
// image copies data.
func (im *Image) Adopt(data []byte, gen int) {
	im.data = make([]byte, len(data))
	copy(im.data, data)
	im.baseMan = BuildManifest(im.data, im.chunkSize)
	im.baseGen = gen
}
