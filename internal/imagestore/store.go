package imagestore

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
)

// Delta describes a patch from a committed base image to a new image:
// which generation it applies to, the new image geometry, the dirty
// chunk indices, and the content address of each dirty chunk. It is
// the manifest half of a delta transfer; the dirty chunks' bytes
// travel separately as the payload.
type Delta struct {
	// BaseGen is the committed generation this patch applies to.
	BaseGen int `json:"base_gen"`
	// ChunkSize is the chunk geometry; it must match the base's.
	ChunkSize int `json:"chunk_size"`
	// Size is the new image length in bytes.
	Size int64 `json:"size"`
	// Dirty lists the patched chunk indices, ascending.
	Dirty []int `json:"dirty"`
	// Sums[i] is the content address of chunk Dirty[i]'s new bytes; the
	// store verifies each patched chunk against it before committing.
	Sums []ChunkSum `json:"sums"`
}

// PayloadBytes returns the raw (uncompressed) payload length the delta
// announces: the summed spans of its dirty chunks.
func (d Delta) PayloadBytes() int64 {
	var total int64
	for _, i := range d.Dirty {
		lo, hi := chunkSpan(i, d.ChunkSize, d.Size)
		total += hi - lo
	}
	return total
}

// Store-side commit errors. All of them leave the last good image
// untouched; the checkpoint manager maps each to a Nack so the client
// can retry (typically by falling back to a full transfer).
var (
	// ErrNoBase reports a delta for a job with no committed image.
	ErrNoBase = errors.New("imagestore: no committed base image")
	// ErrBaseMismatch reports a delta built against a superseded
	// generation (e.g. an earlier commit the client never learned about).
	ErrBaseMismatch = errors.New("imagestore: base generation mismatch")
	// ErrBadDelta reports a structurally invalid or corrupt patch:
	// wrong geometry, out-of-range or unordered dirty indices, payload
	// length mismatch, or a patched chunk whose bytes fail address
	// verification.
	ErrBadDelta = errors.New("imagestore: invalid delta")
)

// stored is one job's committed image. Its data slice is never
// mutated in place — commits build a fresh slice and swap — so readers
// holding a slice returned by Lookup are safe across later commits.
type stored struct {
	gen  int
	data []byte
	man  Manifest
	crc  uint32 // IEEE CRC32 of data
}

// Store holds the last committed checkpoint image of every job, with
// atomic generation-checked delta application. The zero value is not
// usable; call NewStore.
type Store struct {
	mu     sync.Mutex
	images map[string]stored
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{images: make(map[string]stored)}
}

// Lookup returns the committed image of a job: its content, manifest,
// generation, and whole-image CRC. The returned slice aliases the
// committed image and must not be modified.
func (s *Store) Lookup(job string) (data []byte, man Manifest, gen int, crc uint32, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.images[job]
	return st.data, st.man, st.gen, st.crc, ok
}

// Generation returns the committed generation of a job (0 = none).
func (s *Store) Generation(job string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.images[job].gen
}

// CommitFull replaces a job's image wholesale. The store copies data,
// so the caller may reuse its buffer. Returns the new generation and
// the committed manifest and CRC.
func (s *Store) CommitFull(job string, data []byte, chunkSize int) (gen int, man Manifest, crc uint32) {
	own := make([]byte, len(data))
	copy(own, data)
	man = BuildManifest(own, chunkSize)
	crc = crc32.ChecksumIEEE(own)
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.images[job]
	st.gen++
	st.data, st.man, st.crc = own, man, crc
	s.images[job] = st
	Metrics.FullCommits.Inc()
	Metrics.FullBytes.Add(uint64(len(own)))
	return st.gen, man, crc
}

// ApplyDelta patches a job's committed image with a delta and its raw
// (already decompressed) payload. The commit is atomic: every check —
// base generation, chunk geometry, dirty-set shape, payload length,
// per-chunk content-address verification — passes before the new image
// replaces the old one, and any failure returns a named error with the
// last good image intact.
func (s *Store) ApplyDelta(job string, d Delta, payload []byte) (gen int, crc uint32, err error) {
	s.mu.Lock()
	base, ok := s.images[job]
	s.mu.Unlock()
	if !ok || base.gen == 0 {
		return 0, 0, ErrNoBase
	}
	if d.BaseGen != base.gen {
		return 0, 0, fmt.Errorf("%w: delta against gen %d, committed gen %d", ErrBaseMismatch, d.BaseGen, base.gen)
	}
	if d.ChunkSize != base.man.ChunkSize {
		return 0, 0, fmt.Errorf("%w: chunk size %d vs committed %d", ErrBadDelta, d.ChunkSize, base.man.ChunkSize)
	}
	if d.Size < 0 || len(d.Dirty) != len(d.Sums) {
		return 0, 0, fmt.Errorf("%w: %d dirty indices, %d sums", ErrBadDelta, len(d.Dirty), len(d.Sums))
	}
	n := NumChunks(d.Size, d.ChunkSize)
	if got := d.PayloadBytes(); got != int64(len(payload)) {
		return 0, 0, fmt.Errorf("%w: payload %d bytes, dirty spans announce %d", ErrBadDelta, len(payload), got)
	}

	// Build the new image: start from the base, resize, patch.
	data := make([]byte, d.Size)
	copy(data, base.data)
	dirty := make(map[int]bool, len(d.Dirty))
	off := int64(0)
	prev := -1
	for k, i := range d.Dirty {
		if i <= prev || i >= n {
			return 0, 0, fmt.Errorf("%w: dirty index %d out of order or range (chunks %d)", ErrBadDelta, i, n)
		}
		prev = i
		lo, hi := chunkSpan(i, d.ChunkSize, d.Size)
		chunk := payload[off : off+hi-lo]
		off += hi - lo
		if sumChunk(chunk) != d.Sums[k] {
			Metrics.RejectedDeltas.Inc()
			return 0, 0, fmt.Errorf("%w: chunk %d failed content-address verification", ErrBadDelta, i)
		}
		copy(data[lo:hi], chunk)
		dirty[i] = true
	}
	// Every retained chunk must mean the same bytes it meant in the
	// base: fully covered there, with an identical span (the base's
	// final short chunk cannot be silently reinterpreted by a resize).
	for i := 0; i < n; i++ {
		if dirty[i] {
			continue
		}
		lo, hi := chunkSpan(i, d.ChunkSize, d.Size)
		blo, bhi := chunkSpan(i, d.ChunkSize, base.man.Size)
		if lo != blo || hi != bhi || hi > base.man.Size {
			Metrics.RejectedDeltas.Inc()
			return 0, 0, fmt.Errorf("%w: chunk %d not dirty but not covered by base", ErrBadDelta, i)
		}
	}

	man := BuildManifest(data, d.ChunkSize)
	crc = crc32.ChecksumIEEE(data)
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.images[job]
	if cur.gen != base.gen {
		// A concurrent commit slid in while we verified; the delta's
		// base is stale after all.
		return 0, 0, fmt.Errorf("%w: base superseded during apply", ErrBaseMismatch)
	}
	cur.gen++
	cur.data, cur.man, cur.crc = data, man, crc
	s.images[job] = cur
	Metrics.DeltaCommits.Inc()
	Metrics.DeltaBytes.Add(uint64(len(payload)))
	return cur.gen, crc, nil
}
