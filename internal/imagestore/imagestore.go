// Package imagestore implements a content-addressed checkpoint image
// store: checkpoint images are split into fixed-size chunks, each
// chunk is addressed by a (rolling-hash, CRC32) pair, and a new image
// is transferred as a delta against the previously committed one — only
// the chunks whose address changed cross the wire, so a repeated 500 MB
// image costs only its dirty fraction in bandwidth. An optional
// DEFLATE pass squeezes the delta payload further when it helps.
//
// The package has a client half and a server half. The client half
// (Image) owns a mutable image buffer, tracks the manifest of the last
// image the server committed, and encodes deltas against it. The
// server half (Store) keeps one committed image per job and applies
// deltas atomically: a patch that references a stale base generation,
// carries a malformed geometry, or fails per-chunk verification leaves
// the last good image untouched — the same commit-or-Nack contract the
// checkpoint manager enforces for full transfers (DESIGN.md §16).
package imagestore

import (
	"bytes"
	"compress/flate"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// DefaultChunkSize is the dedup granularity (64 KiB): small enough
// that a scattered write pattern still dedups well, large enough that
// a 500 MB image's manifest (8000 chunk sums) fits a control frame.
const DefaultChunkSize = 64 << 10

// rollBase is the multiplier of the polynomial rolling hash. The hash
// is Rabin–Karp style — h = h·b + byte over the chunk — so it could
// slide a fixed window in O(1); with fixed-size chunking we evaluate
// it blockwise and use it as the fast half of the chunk address, with
// CRC32 as the confirming half (a 96-bit combined address makes
// accidental cross-chunk collisions negligible at any realistic image
// count).
const rollBase = 1099511628211 // FNV-64 prime; full-period odd multiplier

// ChunkSum is the content address of one chunk.
type ChunkSum struct {
	// Roll is the polynomial rolling hash of the chunk bytes.
	Roll uint64 `json:"r"`
	// CRC is the IEEE CRC32 of the chunk bytes.
	CRC uint32 `json:"c"`
}

// sumChunk computes a chunk's content address.
func sumChunk(b []byte) ChunkSum {
	var h uint64
	for _, c := range b {
		h = h*rollBase + uint64(c)
	}
	return ChunkSum{Roll: h, CRC: crc32.ChecksumIEEE(b)}
}

// Manifest is the chunk-address list of a whole image — what the store
// remembers about the committed content and what deltas are diffed
// against.
type Manifest struct {
	// ChunkSize is the chunking granularity in bytes.
	ChunkSize int `json:"chunk_size"`
	// Size is the image length in bytes; the final chunk is short when
	// Size is not a multiple of ChunkSize.
	Size int64 `json:"size"`
	// Sums[i] addresses bytes [i·ChunkSize, min((i+1)·ChunkSize, Size)).
	Sums []ChunkSum `json:"sums"`
}

// NumChunks returns the chunk count for an image of size bytes at the
// given granularity: ceil(size/chunkSize), 0 for an empty image.
func NumChunks(size int64, chunkSize int) int {
	if size <= 0 || chunkSize <= 0 {
		return 0
	}
	return int((size + int64(chunkSize) - 1) / int64(chunkSize))
}

// chunkSpan returns the byte range of chunk i in an image of the given
// size.
func chunkSpan(i, chunkSize int, size int64) (lo, hi int64) {
	lo = int64(i) * int64(chunkSize)
	hi = lo + int64(chunkSize)
	if hi > size {
		hi = size
	}
	return lo, hi
}

// BuildManifest chunks data and computes every chunk's address.
// chunkSize ≤ 0 selects DefaultChunkSize. An empty image yields a
// zero-chunk manifest (Size 0), the degenerate case Diff and Apply
// both accept.
func BuildManifest(data []byte, chunkSize int) Manifest {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	n := NumChunks(int64(len(data)), chunkSize)
	m := Manifest{ChunkSize: chunkSize, Size: int64(len(data)), Sums: make([]ChunkSum, n)}
	for i := 0; i < n; i++ {
		lo, hi := chunkSpan(i, chunkSize, m.Size)
		m.Sums[i] = sumChunk(data[lo:hi])
	}
	Metrics.ChunksHashed.Add(uint64(n))
	return m
}

// Compatible reports whether two manifests share chunk geometry, the
// precondition for diffing one against the other.
func (m Manifest) Compatible(o Manifest) bool {
	return m.ChunkSize == o.ChunkSize
}

// Diff returns the indices of cur's chunks that are not already
// present at the same position in prev — the dirty set a delta
// transfer must carry. The comparison is content-addressed: a chunk
// rewritten with identical bytes dedups away, and an identical image
// diffs to nil (the zero-chunks-on-wire fast path). Chunks beyond
// prev's length, and every chunk when geometries differ, are dirty.
func Diff(prev, cur Manifest) []int {
	if !prev.Compatible(cur) {
		all := make([]int, len(cur.Sums))
		for i := range all {
			all[i] = i
		}
		return all
	}
	var dirty []int
	for i, s := range cur.Sums {
		if i < len(prev.Sums) && prev.Sums[i] == s {
			// Same address at the same offset: dedup against the
			// committed image.
			continue
		}
		dirty = append(dirty, i)
	}
	// The final prev chunk may be short; if cur grew, its sum covers
	// different bytes even when the prefix matches, and the address
	// comparison above already catches that (a short chunk and its
	// extended successor hash differently).
	Metrics.ChunksDeduped.Add(uint64(len(cur.Sums) - len(dirty)))
	return dirty
}

// DeltaPayload concatenates the bytes of the dirty chunks in index
// order — the raw wire payload of a delta transfer.
func DeltaPayload(data []byte, chunkSize int, dirty []int) []byte {
	size := int64(len(data))
	var total int64
	for _, i := range dirty {
		lo, hi := chunkSpan(i, chunkSize, size)
		total += hi - lo
	}
	out := make([]byte, 0, total)
	for _, i := range dirty {
		lo, hi := chunkSpan(i, chunkSize, size)
		out = append(out, data[lo:hi]...)
	}
	return out
}

// Compress DEFLATEs payload and reports whether that actually won:
// pseudo-random checkpoint content is incompressible and comes back
// (slightly) bigger, in which case the original payload is returned
// and ok is false — callers then ship the raw bytes and announce no
// encoding.
func Compress(payload []byte) (out []byte, ok bool) {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return payload, false
	}
	if _, err := w.Write(payload); err != nil || w.Close() != nil {
		return payload, false
	}
	if buf.Len() >= len(payload) {
		return payload, false
	}
	Metrics.CompressSavedBytes.Add(uint64(len(payload) - buf.Len()))
	return buf.Bytes(), true
}

// Decompress inflates a Compress-encoded payload back to rawLen bytes.
func Decompress(payload []byte, rawLen int64) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(payload))
	defer r.Close()
	out := make([]byte, rawLen)
	if _, err := io.ReadFull(r, out); err != nil {
		return nil, fmt.Errorf("imagestore: inflate: %w", err)
	}
	// A trailing garbage byte means the announced raw length lied.
	var one [1]byte
	if n, _ := r.Read(one[:]); n != 0 {
		return nil, errors.New("imagestore: inflate: payload longer than announced")
	}
	return out, nil
}
