package imagestore

import (
	"bytes"
	"errors"
	"hash/crc32"
	"testing"
)

func TestBuildManifestEmptyImage(t *testing.T) {
	m := BuildManifest(nil, 1024)
	if m.Size != 0 || len(m.Sums) != 0 {
		t.Fatalf("empty image: got size=%d chunks=%d, want 0/0", m.Size, len(m.Sums))
	}
	if dirty := Diff(m, m); len(dirty) != 0 {
		t.Fatalf("empty vs empty diff: got %v, want none", dirty)
	}
}

func TestBuildManifestSubChunkImage(t *testing.T) {
	data := []byte("smaller than one chunk")
	m := BuildManifest(data, 1024)
	if len(m.Sums) != 1 {
		t.Fatalf("sub-chunk image: got %d chunks, want 1", len(m.Sums))
	}
	if m.Sums[0] != sumChunk(data) {
		t.Fatalf("sub-chunk sum mismatch")
	}
}

func TestBuildManifestDefaultChunkSize(t *testing.T) {
	m := BuildManifest(make([]byte, 100), 0)
	if m.ChunkSize != DefaultChunkSize {
		t.Fatalf("chunkSize<=0: got %d, want DefaultChunkSize", m.ChunkSize)
	}
}

func TestDiffIdenticalImageFastPath(t *testing.T) {
	im := NewImage(10*1024, 1024, 1)
	cur := BuildManifest(im.Bytes(), 1024)
	if dirty := Diff(cur, cur); len(dirty) != 0 {
		t.Fatalf("identical image: got %d dirty chunks, want 0 on wire", len(dirty))
	}
}

func TestDiffDirtyRegionStraddlingChunkBoundary(t *testing.T) {
	const cs = 1024
	im := NewImage(8*cs, cs, 2)
	prev := BuildManifest(im.Bytes(), cs)
	// Dirty a region straddling the chunk 2/3 boundary: both chunks —
	// and only those — must turn dirty.
	copy(im.Bytes()[3*cs-16:3*cs+16], bytes.Repeat([]byte{0xAB}, 32))
	cur := BuildManifest(im.Bytes(), cs)
	dirty := Diff(prev, cur)
	if len(dirty) != 2 || dirty[0] != 2 || dirty[1] != 3 {
		t.Fatalf("straddling write: dirty=%v, want [2 3]", dirty)
	}
}

func TestDiffRewrittenIdenticalChunkDedups(t *testing.T) {
	const cs = 512
	im := NewImage(4*cs, cs, 3)
	prev := BuildManifest(im.Bytes(), cs)
	// Rewrite chunk 1 with its own bytes: content-addressing must see
	// no change.
	chunk := append([]byte(nil), im.Bytes()[cs:2*cs]...)
	copy(im.Bytes()[cs:2*cs], chunk)
	cur := BuildManifest(im.Bytes(), cs)
	if dirty := Diff(prev, cur); len(dirty) != 0 {
		t.Fatalf("identical rewrite: dirty=%v, want none", dirty)
	}
}

func TestDiffIncompatibleGeometryAllDirty(t *testing.T) {
	data := make([]byte, 4096)
	prev := BuildManifest(data, 512)
	cur := BuildManifest(data, 1024)
	dirty := Diff(prev, cur)
	if len(dirty) != len(cur.Sums) {
		t.Fatalf("geometry change: %d dirty of %d, want all", len(dirty), len(cur.Sums))
	}
}

func TestDiffGrownImage(t *testing.T) {
	const cs = 256
	im := NewImage(3*cs+100, cs, 4)
	prev := BuildManifest(im.Bytes(), cs)
	// Grow past the old short final chunk: the extended final chunk and
	// the brand-new one must both be dirty.
	grown := append(append([]byte(nil), im.Bytes()...), bytes.Repeat([]byte{7}, cs)...)
	cur := BuildManifest(grown, cs)
	dirty := Diff(prev, cur)
	if len(dirty) != 2 || dirty[0] != 3 || dirty[1] != 4 {
		t.Fatalf("grown image: dirty=%v, want [3 4]", dirty)
	}
}

func TestCompressRoundTripAndIncompressibleFallback(t *testing.T) {
	// Compressible payload round-trips smaller.
	comp := bytes.Repeat([]byte("checkpoint"), 1000)
	out, ok := Compress(comp)
	if !ok || len(out) >= len(comp) {
		t.Fatalf("compressible payload: ok=%v len=%d (raw %d)", ok, len(out), len(comp))
	}
	back, err := Decompress(out, int64(len(comp)))
	if err != nil || !bytes.Equal(back, comp) {
		t.Fatalf("round trip failed: %v", err)
	}
	// Pseudo-random payload comes back unchanged with ok=false.
	rnd := NewImage(16*1024, 1024, 5).Bytes()
	out, ok = Compress(rnd)
	if ok || !bytes.Equal(out, rnd) {
		t.Fatalf("incompressible payload: ok=%v, want raw passthrough", ok)
	}
}

func TestDecompressRejectsLengthLies(t *testing.T) {
	payload := bytes.Repeat([]byte("x"), 4096)
	out, ok := Compress(payload)
	if !ok {
		t.Fatal("expected compressible payload")
	}
	if _, err := Decompress(out, int64(len(payload))-1); err == nil {
		t.Fatal("short announced length: want error, got nil")
	}
	if _, err := Decompress(out, int64(len(payload))+1); err == nil {
		t.Fatal("long announced length: want error, got nil")
	}
}

func TestStoreFullThenDeltaCommit(t *testing.T) {
	const cs = 1024
	s := NewStore()
	im := NewImage(8*cs, cs, 10)

	gen, _, crc := s.CommitFull("job", im.Bytes(), cs)
	if gen != 1 {
		t.Fatalf("first commit: gen=%d, want 1", gen)
	}
	if crc != crc32.ChecksumIEEE(im.Bytes()) {
		t.Fatal("full commit CRC mismatch")
	}
	im.CommitBase(gen)

	im.MutateFraction(0.25)
	d, payload := im.EncodeDelta()
	if len(d.Dirty) == 0 || len(d.Dirty) == 8 {
		t.Fatalf("expected partial dirty set, got %v", d.Dirty)
	}
	gen2, crc2, err := s.ApplyDelta("job", d, payload)
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	if gen2 != 2 {
		t.Fatalf("delta commit: gen=%d, want 2", gen2)
	}
	if want := crc32.ChecksumIEEE(im.Bytes()); crc2 != want {
		t.Fatalf("delta commit CRC %08x, want %08x", crc2, want)
	}
	data, _, _, _, ok := s.Lookup("job")
	if !ok || !bytes.Equal(data, im.Bytes()) {
		t.Fatal("committed image differs from client image")
	}
}

func TestStoreIdenticalImageZeroChunkDelta(t *testing.T) {
	const cs = 512
	s := NewStore()
	im := NewImage(4*cs, cs, 11)
	gen, _, _ := s.CommitFull("job", im.Bytes(), cs)
	im.CommitBase(gen)

	d, payload := im.EncodeDelta()
	if len(d.Dirty) != 0 || len(payload) != 0 {
		t.Fatalf("identical image: %d dirty chunks, %d payload bytes, want 0/0", len(d.Dirty), len(payload))
	}
	gen2, _, err := s.ApplyDelta("job", d, payload)
	if err != nil || gen2 != 2 {
		t.Fatalf("zero-chunk delta: gen=%d err=%v", gen2, err)
	}
}

func TestStoreDeltaErrors(t *testing.T) {
	const cs = 512
	s := NewStore()
	im := NewImage(4*cs, cs, 12)

	// No base committed yet.
	if _, _, err := s.ApplyDelta("job", Delta{BaseGen: 1, ChunkSize: cs, Size: im.Size()}, nil); !errors.Is(err, ErrNoBase) {
		t.Fatalf("no base: err=%v, want ErrNoBase", err)
	}

	gen, _, _ := s.CommitFull("job", im.Bytes(), cs)
	im.CommitBase(gen)
	im.MutateFraction(0.5)
	d, payload := im.EncodeDelta()

	// Stale base generation.
	stale := d
	stale.BaseGen = gen + 7
	if _, _, err := s.ApplyDelta("job", stale, payload); !errors.Is(err, ErrBaseMismatch) {
		t.Fatalf("stale base: err=%v, want ErrBaseMismatch", err)
	}

	// Wrong chunk geometry.
	bad := d
	bad.ChunkSize = cs * 2
	if _, _, err := s.ApplyDelta("job", bad, payload); !errors.Is(err, ErrBadDelta) {
		t.Fatalf("bad geometry: err=%v, want ErrBadDelta", err)
	}

	// Truncated payload.
	if len(payload) > 0 {
		if _, _, err := s.ApplyDelta("job", d, payload[:len(payload)-1]); !errors.Is(err, ErrBadDelta) {
			t.Fatalf("short payload: err=%v, want ErrBadDelta", err)
		}
	}

	// Corrupt chunk bytes fail content-address verification, and the
	// failed apply leaves the committed image untouched.
	if len(payload) > 0 {
		corrupt := append([]byte(nil), payload...)
		corrupt[0] ^= 0xFF
		if _, _, err := s.ApplyDelta("job", d, corrupt); !errors.Is(err, ErrBadDelta) {
			t.Fatalf("corrupt payload: err=%v, want ErrBadDelta", err)
		}
	}
	if g := s.Generation("job"); g != gen {
		t.Fatalf("failed applies advanced generation to %d, want %d", g, gen)
	}

	// The clean delta still applies after all the failures.
	if _, _, err := s.ApplyDelta("job", d, payload); err != nil {
		t.Fatalf("clean delta after failures: %v", err)
	}
}

func TestStoreDeltaResize(t *testing.T) {
	const cs = 256
	s := NewStore()
	im := NewImage(4*cs, cs, 13)
	gen, _, _ := s.CommitFull("job", im.Bytes(), cs)
	im.CommitBase(gen)

	// Shrink to a non-chunk-aligned size: the client re-encodes; the
	// store must reject any non-dirty chunk whose span changed.
	shrunk := append([]byte(nil), im.Bytes()[:3*cs+100]...)
	im.Adopt(shrunk, 0) // replace content; forget base via explicit reset below
	im.ResetBase()
	cur := BuildManifest(shrunk, cs)
	prev := BuildManifest(nil, cs)
	_ = prev
	// Build the delta by hand against gen 1: chunk 3's span changed
	// (was full, now short), so it must be dirty.
	d := Delta{BaseGen: gen, ChunkSize: cs, Size: int64(len(shrunk)),
		Dirty: []int{3}, Sums: []ChunkSum{cur.Sums[3]}}
	payload := shrunk[3*cs:]
	gen2, crc, err := s.ApplyDelta("job", d, payload)
	if err != nil {
		t.Fatalf("shrinking delta: %v", err)
	}
	if gen2 != 2 || crc != crc32.ChecksumIEEE(shrunk) {
		t.Fatalf("shrinking delta committed wrong image")
	}

	// A resize that pretends the reinterpreted final chunk is clean
	// must be rejected.
	d2 := Delta{BaseGen: gen2, ChunkSize: cs, Size: int64(len(shrunk)) - 50}
	if _, _, err := s.ApplyDelta("job", d2, nil); !errors.Is(err, ErrBadDelta) {
		t.Fatalf("uncovered resize: err=%v, want ErrBadDelta", err)
	}
}

func TestImageAdoptAndRecoveryRoundTrip(t *testing.T) {
	const cs = 1024
	s := NewStore()
	im := NewImage(4*cs, cs, 14)
	gen, _, _ := s.CommitFull("job", im.Bytes(), cs)
	im.CommitBase(gen)
	im.MutateFraction(0.3)
	d, payload := im.EncodeDelta()
	gen, _, err := s.ApplyDelta("job", d, payload)
	if err != nil {
		t.Fatal(err)
	}
	im.CommitBase(gen)
	want := append([]byte(nil), im.Bytes()...)

	// A fresh client (restart after failure) adopts the committed image
	// and can immediately delta against it.
	data, _, sgen, _, ok := s.Lookup("job")
	if !ok {
		t.Fatal("lookup failed")
	}
	im2 := NewImage(0, cs, 15)
	im2.Adopt(data, sgen)
	if !bytes.Equal(im2.Bytes(), want) {
		t.Fatal("adopted image differs from committed")
	}
	d2, p2 := im2.EncodeDelta()
	if len(d2.Dirty) != 0 {
		t.Fatalf("adopted image should diff clean, got %d dirty", len(d2.Dirty))
	}
	if _, _, err := s.ApplyDelta("job", d2, p2); err != nil {
		t.Fatalf("delta from adopted image: %v", err)
	}
}

func TestMutateFractionDeterministic(t *testing.T) {
	a := NewImage(64*1024, 1024, 42)
	b := NewImage(64*1024, 1024, 42)
	a.MutateFraction(0.2)
	b.MutateFraction(0.2)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same seed, same mutations: images differ")
	}
	a.MutateFraction(0)
	snap := append([]byte(nil), a.Bytes()...)
	a.MutateFraction(-1)
	if !bytes.Equal(a.Bytes(), snap) {
		t.Fatal("frac<=0 must not mutate")
	}
}

func TestDirtyFractionCurve(t *testing.T) {
	if f := DirtyFraction(0, 100); f != 0 {
		t.Fatalf("zero rate: %v", f)
	}
	if f := DirtyFraction(0.01, 0); f != 0 {
		t.Fatalf("zero work: %v", f)
	}
	f1, f2 := DirtyFraction(0.01, 10), DirtyFraction(0.01, 100)
	if !(f1 > 0 && f1 < f2 && f2 < 1) {
		t.Fatalf("curve not monotone in (0,1): f(10)=%v f(100)=%v", f1, f2)
	}
	if f := DirtyFraction(10, 1e6); f > 1 {
		t.Fatalf("fraction above 1: %v", f)
	}
}
