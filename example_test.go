package ckptsched_test

import (
	"fmt"

	ckptsched "github.com/cycleharvest/ckptsched"
)

// ExampleTopt computes one optimal work interval from explicit model
// parameters — the paper's §3.5 portable routine. The resource follows
// the heavy-tailed Weibull the paper measured on a real Condor machine
// and has already been available for 10 minutes; a 500 MB checkpoint
// costs 110 s on the campus network.
func ExampleTopt() {
	T, eff, err := ckptsched.Topt(ckptsched.ModelWeibull, []float64{0.43, 3409},
		600 /* T_elapsed */, 110 /* C */, 110 /* R */)
	if err != nil {
		panic(err)
	}
	fmt.Printf("work for %.0f s between checkpoints (expected efficiency %.0f%%)\n", T, 100*eff)
	// Output:
	// work for 1119 s between checkpoints (expected efficiency 76%)
}

// ExampleNew builds a scheduler around an explicit availability
// distribution and derives an aperiodic schedule: because the Weibull
// hazard falls with age, later intervals stretch.
func ExampleNew() {
	s, err := ckptsched.New(ckptsched.Weibull(0.43, 3409))
	if err != nil {
		panic(err)
	}
	costs, err := ckptsched.NewCosts(110, -1, -1) // R and L default to C
	if err != nil {
		panic(err)
	}
	sched, err := s.Schedule(0, costs, ckptsched.ScheduleOptions{Horizon: 3600})
	if err != nil {
		panic(err)
	}
	for i := range sched.Intervals {
		fmt.Printf("interval %d at age %5.0f s: work %4.0f s\n", i, sched.Ages[i], sched.Intervals[i])
	}
	// Output:
	// interval 0 at age     0 s: work 1426 s
	// interval 1 at age  1536 s: work 1141 s
	// interval 2 at age  2787 s: work 1210 s
}

// ExampleParseModel resolves user-supplied model names.
func ExampleParseModel() {
	m, err := ckptsched.ParseModel("hyperexp2")
	if err != nil {
		panic(err)
	}
	fmt.Println(m)
	// Output:
	// hyperexp2
}
