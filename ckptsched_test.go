package ckptsched_test

import (
	"math"
	"math/rand"
	"testing"

	ckptsched "github.com/cycleharvest/ckptsched"
)

func TestFacadeFitAndSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := ckptsched.Weibull(0.43, 3409)
	history := make([]float64, 25)
	for i := range history {
		history[i] = w.(interface {
			Rand(*rand.Rand) float64
		}).Rand(rng)
	}
	for _, m := range ckptsched.Models {
		s, err := ckptsched.Fit(m, history)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		costs, err := ckptsched.NewCosts(110, -1, -1)
		if err != nil {
			t.Fatal(err)
		}
		T, err := s.Topt(0, costs)
		if err != nil {
			t.Fatal(err)
		}
		if T <= 0 {
			t.Errorf("%v: T_opt = %g", m, T)
		}
		sched, err := s.Schedule(0, costs, ckptsched.ScheduleOptions{Horizon: 7200})
		if err != nil {
			t.Fatal(err)
		}
		if sched.Len() == 0 {
			t.Errorf("%v: empty schedule", m)
		}
	}
}

func TestFacadeToptRoutine(t *testing.T) {
	T, eff, err := ckptsched.Topt(ckptsched.ModelWeibull, []float64{0.43, 3409}, 500, 110, 110)
	if err != nil {
		t.Fatal(err)
	}
	if T <= 0 || eff <= 0 || eff >= 1 {
		t.Errorf("T=%g eff=%g", T, eff)
	}
}

func TestFacadeParseModel(t *testing.T) {
	m, err := ckptsched.ParseModel("hyperexp2")
	if err != nil || m != ckptsched.ModelHyperexp2 {
		t.Errorf("ParseModel = %v, %v", m, err)
	}
}

func TestFacadeDistributionConstructors(t *testing.T) {
	e := ckptsched.Exponential(0.01)
	if got := e.Mean(); math.Abs(got-100) > 1e-9 {
		t.Errorf("exp mean = %g", got)
	}
	h := ckptsched.Hyperexponential([]float64{1, 1}, []float64{0.1, 0.01})
	if got := h.Mean(); math.Abs(got-55) > 1e-9 {
		t.Errorf("hyperexp mean = %g", got)
	}
}
